"""The capability-tagged solver registry and the ``solve`` facade.

Algorithms become first-class registered objects the same way experiments
did in :mod:`repro.experiments.registry`: a module-level adapter function
is registered once via the :func:`solver` decorator, carrying capability
metadata (problem, model, guarantee, bipartite-only?, weighted?), and every
consumer — the CLI, the experiment trials, the benchmarks — resolves
solvers by name instead of importing algorithm functions directly::

    from repro.solve import RunContext, solve

    result = solve(graph, "matching.coreset", RunContext(seed=0, k=8))
    result.value, result.verified, result.stats["total_bits"]

The registry preserves registration order; :func:`solver_ids` and
:func:`all_solvers` iterate in that order (matching solvers first, then
vertex cover, offline before distributed — the order ``repro solve
--list`` prints).

Adapter contract
----------------
An adapter is a module-level function ``fn(graph, ctx, **params) ->
(certificate, stats)``: it derives any randomness it needs from
``ctx.generators(...)`` (documenting the stream order in its docstring),
resolves the execution substrate through ``ctx.executor_scope()``, and
returns the raw certificate plus a flat stats dict.  Being module-level
(never a closure) keeps every :class:`SolverSpec` picklable, so solver
specs can ship to worker processes exactly like experiment trials do.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.solve.context import RunContext
from repro.solve.result import SolveResult

__all__ = [
    "DuplicateSolverError",
    "SolverCapabilityError",
    "SolverSpec",
    "UnknownSolverError",
    "all_solvers",
    "get_solver",
    "solve",
    "solver",
    "solver_ids",
    "solvers_for",
]

PROBLEMS = ("matching", "vertex_cover")
MODELS = ("offline", "coreset", "mapreduce", "streaming")


class UnknownSolverError(LookupError):
    """No solver is registered under the requested name."""


class DuplicateSolverError(ValueError):
    """Two adapters tried to claim the same solver name."""


class SolverCapabilityError(ValueError):
    """The input graph or context does not satisfy a solver's capabilities."""


AdapterFn = Callable[..., Tuple[np.ndarray, Dict[str, Any]]]


@dataclass(frozen=True)
class SolverSpec:
    """One registered solver: capability metadata plus the adapter.

    ``params`` documents the solver-specific keyword parameters and their
    defaults (``alpha`` for subsampled coresets, ``memory_edges`` for
    filtering, ...); ``solve`` merges caller overrides over them.
    """

    name: str
    problem: str
    model: str
    guarantee: str
    description: str
    fn: AdapterFn
    bipartite_only: bool = False
    weighted: bool = False
    #: Capacitated (b-matching / AdWords) solvers require a
    #: :class:`~repro.graph.capacity.CapacitatedBipartiteGraph` — and the
    #: gate is two-way: a capacitated *input* also refuses non-capacitated
    #: solvers, because silently dropping budgets would report an answer to
    #: a different problem.
    capacitated: bool = False
    uses_k: bool = False
    #: Reference/baseline algorithms (the ``repro.baselines`` family):
    #: kept in the registry for experiments and explicit requests, but
    #: capability-driven selection prefers any non-baseline candidate —
    #: "ship every edge" must never win a best-solver query just because
    #: shipping everything is exact.
    baseline: bool = False
    params: Mapping[str, Any] = field(default_factory=dict)
    #: What ``SolveResult.value`` reports: ``"size"`` counts certificate
    #: rows; ``"weight"`` reads the adapter's mandatory ``stats["weight"]``
    #: (solution weight).  Explicit here so an adapter adding an
    #: *informational* weight stat can never silently change the objective.
    objective: str = "size"

    def capabilities(self) -> Dict[str, Any]:
        """The metadata dict ``repro solve --list`` renders."""
        return {
            "name": self.name,
            "problem": self.problem,
            "model": self.model,
            "guarantee": self.guarantee,
            "bipartite_only": self.bipartite_only,
            "weighted": self.weighted,
            "capacitated": self.capacitated,
            "uses_k": self.uses_k,
            "baseline": self.baseline,
            "objective": self.objective,
            "params": dict(self.params),
            "description": self.description,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SolverSpec({self.name!r}, problem={self.problem!r}, "
            f"model={self.model!r}, guarantee={self.guarantee!r})"
        )


_REGISTRY: Dict[str, SolverSpec] = {}


def solver(
    name: str,
    *,
    problem: str,
    model: str,
    guarantee: str,
    description: str,
    bipartite_only: bool = False,
    weighted: bool = False,
    capacitated: bool = False,
    uses_k: bool = False,
    baseline: bool = False,
    params: Mapping[str, Any] | None = None,
    objective: str = "size",
) -> Callable[[AdapterFn], AdapterFn]:
    """Register a module-level adapter function as a named solver."""
    if problem not in PROBLEMS:
        raise ValueError(f"problem must be one of {PROBLEMS}, got {problem!r}")
    if model not in MODELS:
        raise ValueError(f"model must be one of {MODELS}, got {model!r}")
    if objective not in ("size", "weight"):
        raise ValueError(
            f"objective must be 'size' or 'weight', got {objective!r}"
        )
    key = name.strip().lower()

    def decorate(fn: AdapterFn) -> AdapterFn:
        if key in _REGISTRY:
            raise DuplicateSolverError(
                f"solver name {key!r} is already registered "
                f"(by {_REGISTRY[key].fn.__name__})"
            )
        _REGISTRY[key] = SolverSpec(
            name=key,
            problem=problem,
            model=model,
            guarantee=guarantee,
            description=description,
            fn=fn,
            bipartite_only=bipartite_only,
            weighted=weighted,
            capacitated=capacitated,
            uses_k=uses_k,
            baseline=baseline,
            params=dict(params or {}),
            objective=objective,
        )
        return fn

    return decorate


def _ensure_registered() -> None:
    # Adapters live in repro.solve.adapters and register on import; make
    # lookups work even when the caller imported only this module.
    import repro.solve.adapters  # noqa: F401


def get_solver(name: str) -> SolverSpec:
    """Look up a spec by name (case-insensitive).

    Accepts the full registered name (``"matching.coreset"``) or a bare
    suffix (``"coreset"``) when it is unambiguous across problems; pass
    ``"<problem>.<suffix>"`` to disambiguate.
    """
    _ensure_registered()
    key = name.strip().lower()
    if key in _REGISTRY:
        return _REGISTRY[key]
    suffix_hits = [s for s in _REGISTRY.values()
                   if s.name.split(".", 1)[-1] == key]
    if len(suffix_hits) == 1:
        return suffix_hits[0]
    if len(suffix_hits) > 1:
        raise UnknownSolverError(
            f"solver name {name!r} is ambiguous: "
            f"{', '.join(s.name for s in suffix_hits)}"
        )
    raise UnknownSolverError(
        f"unknown solver {name!r}; available: {', '.join(_REGISTRY)}"
    )


def solver_ids() -> List[str]:
    """All registered names, in registration order."""
    _ensure_registered()
    return list(_REGISTRY)


def all_solvers() -> List[SolverSpec]:
    """All registered specs, in registration order."""
    _ensure_registered()
    return list(_REGISTRY.values())


def solvers_for(
    problem: Optional[str] = None, model: Optional[str] = None
) -> List[SolverSpec]:
    """Specs filtered by problem and/or model, in registration order."""
    return [
        s for s in all_solvers()
        if (problem is None or s.problem == problem)
        and (model is None or s.model == model)
    ]


# --------------------------------------------------------------------- #
# the facade
# --------------------------------------------------------------------- #
def solve(
    graph,
    solver_name: str,
    ctx: RunContext | None = None,
    *,
    verify: bool = True,
    **params: Any,
) -> SolveResult:
    """Run one registered solver on ``graph`` and return a
    :class:`~repro.solve.result.SolveResult`.

    ``ctx`` defaults to ``RunContext()`` (fresh entropy, serial execution).
    ``params`` overrides the solver's registered parameter defaults;
    unknown parameter names are rejected so typos fail loudly.  Capability
    checks run before the solver: bipartite-only solvers demand a
    :class:`~repro.graph.bipartite.BipartiteGraph`, weighted solvers a
    :class:`~repro.graph.weights.WeightedGraph`.

    ``verify=True`` (the default) checks the certificate with the
    problem's verifier and records the outcome in ``result.verified``;
    ``verify=False`` skips the check (``verified`` is then ``False`` and
    ``stats["verify_skipped"]`` is set) for hot loops that re-verify in
    bulk elsewhere.
    """
    from repro.graph.bipartite import BipartiteGraph
    from repro.graph.capacity import CapacitatedBipartiteGraph
    from repro.graph.weights import WeightedGraph, has_edge_weights

    spec = get_solver(solver_name)
    ctx = RunContext() if ctx is None else ctx

    if spec.bipartite_only and not isinstance(graph, BipartiteGraph):
        raise SolverCapabilityError(
            f"solver {spec.name!r} requires a BipartiteGraph, "
            f"got {type(graph).__name__}"
        )
    if spec.weighted and not (
        isinstance(graph, WeightedGraph) or has_edge_weights(graph)
    ):
        raise SolverCapabilityError(
            f"solver {spec.name!r} requires edge weights, "
            f"got {type(graph).__name__}"
        )
    if spec.capacitated and not isinstance(graph, CapacitatedBipartiteGraph):
        raise SolverCapabilityError(
            f"solver {spec.name!r} requires a CapacitatedBipartiteGraph, "
            f"got {type(graph).__name__}"
        )
    if isinstance(graph, CapacitatedBipartiteGraph) and not spec.capacitated:
        raise SolverCapabilityError(
            f"solver {spec.name!r} ignores capacities; a capacitated input "
            f"needs a capacitated solver (it would silently answer a "
            f"different problem)"
        )
    unknown = sorted(set(params) - set(spec.params))
    if unknown:
        raise ValueError(
            f"solver {spec.name!r} has no parameter(s) "
            f"{', '.join(unknown)}; settable: "
            f"{', '.join(sorted(spec.params)) or '(none)'}"
        )
    merged = {**spec.params, **params}

    start = time.perf_counter()
    certificate, stats = spec.fn(graph, ctx, **merged)
    wall = time.perf_counter() - start

    certificate = np.asarray(certificate, dtype=np.int64)
    if spec.problem == "matching":
        certificate = certificate.reshape(-1, 2)
    else:
        certificate = certificate.reshape(-1)
    stats = dict(stats)

    verified = False
    if verify:
        verified = _verify_certificate(spec.problem, graph, certificate)
    else:
        stats["verify_skipped"] = True

    # The objective is declared per spec, never inferred from stats keys —
    # an adapter adding an informational "weight" stat cannot silently
    # change what value means.
    if spec.objective == "weight":
        value = float(stats["weight"])
    else:
        value = float(certificate.shape[0])
    return SolveResult(
        problem=spec.problem,
        solver=spec.name,
        value=value,
        certificate=certificate,
        verified=verified,
        stats=stats,
        wall_time_s=wall,
    )


def _verify_certificate(problem: str, graph, certificate: np.ndarray) -> bool:
    if problem == "matching":
        from repro.graph.capacity import CapacitatedBipartiteGraph

        if isinstance(graph, CapacitatedBipartiteGraph):
            from repro.workloads.bmatching import edge_indices, verify_b_matching

            try:
                idx = edge_indices(graph, certificate)
            except ValueError:
                return False
            return verify_b_matching(graph, idx)
        from repro.matching.verify import is_matching

        return bool(is_matching(graph, certificate))
    from repro.cover.verify import is_vertex_cover

    return bool(is_vertex_cover(graph, certificate))
