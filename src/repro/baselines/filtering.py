"""Lattanzi–Moseley–Suri–Vassilvitskii "filtering" MapReduce matching.

The algorithm the paper's MapReduce corollary is measured against
(reference [46]; SPAA'11, "Filtering: a method for solving graph problems
in MapReduce"):

    repeat until the residual edge set fits on one machine:
      1. sample each residual edge independently so that ~``memory`` edges
         land on a central machine                       (1 MapReduce round)
      2. the central machine computes a maximal matching M' of the sample
         and broadcasts the matched vertices
      3. every machine drops its edges with a matched endpoint (filtering)
    finally: ship the residual to the central machine, extend the matching
    maximally there                                      (1 final round)

With memory ``η = n^{1+c}`` this terminates in O(1/c) rounds w.h.p. and the
result is a *maximal* matching of G, hence a 2-approximation (and its
endpoint set a 2-approximate vertex cover).  With the paper's memory budget
``Õ(n√n)`` (c = 1/2) the expected round count is ≥ 3 — versus 2 rounds for
the coreset algorithm — which is exactly the comparison of experiment E8.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.edgelist import Graph
from repro.matching.maximal import complete_to_maximal, greedy_maximal_matching
from repro.utils.rng import RandomState, as_generator

__all__ = ["FilteringResult", "filtering_matching"]


@dataclass
class FilteringResult:
    """Output of one filtering run."""

    matching: np.ndarray
    n_rounds: int
    peak_central_edges: int
    sample_sizes: list[int]

    @property
    def matching_size(self) -> int:
        return int(self.matching.shape[0])


def filtering_matching(
    graph: Graph,
    memory_edges: int,
    rng: RandomState = None,
    max_rounds: int = 100,
) -> FilteringResult:
    """Run the filtering algorithm with a central-machine memory of
    ``memory_edges`` edges.

    Each sampling+filtering iteration counts as one round; the final
    "ship the residual" step counts as one more, matching the accounting
    used for the coreset algorithm (each communication phase = 1 round).
    """
    if memory_edges < 1:
        raise ValueError(f"memory must be >= 1 edge, got {memory_edges}")
    gen = as_generator(rng)

    residual = graph.edges
    matched = np.zeros(graph.n_vertices, dtype=bool)
    matching_parts: list[np.ndarray] = []
    rounds = 0
    peak = 0
    sample_sizes: list[int] = []

    while residual.shape[0] > memory_edges:
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError(
                "filtering failed to converge; memory budget too small "
                f"({memory_edges} edges for {graph.n_edges}-edge graph)"
            )
        p = min(1.0, memory_edges / (2.0 * residual.shape[0]))
        keep = gen.random(residual.shape[0]) < p
        sample = residual[keep]
        sample_sizes.append(int(sample.shape[0]))
        peak = max(peak, int(sample.shape[0]))
        # Central machine: maximal matching of the sample, respecting the
        # globally matched vertices accumulated so far.
        free = ~matched[sample[:, 0]] & ~matched[sample[:, 1]]
        m_new = greedy_maximal_matching(
            Graph(graph.n_vertices, sample[free], validated=False),
            order="random",
            rng=gen,
        )
        if m_new.shape[0]:
            matching_parts.append(m_new)
            matched[m_new.ravel()] = True
        # Filtering step: drop covered edges everywhere.
        alive = ~matched[residual[:, 0]] & ~matched[residual[:, 1]]
        residual = residual[alive]

    # Final round: residual fits centrally; extend to a maximal matching.
    rounds += 1
    peak = max(peak, int(residual.shape[0]))
    partial = (
        np.vstack(matching_parts) if matching_parts
        else np.zeros((0, 2), dtype=np.int64)
    )
    final = complete_to_maximal(
        Graph(graph.n_vertices, residual, validated=False), partial,
        order="random", rng=gen,
    )
    return FilteringResult(
        matching=final,
        n_rounds=rounds,
        peak_central_edges=peak,
        sample_sizes=sample_sizes,
    )
