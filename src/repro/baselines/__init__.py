"""Baselines the paper compares against (or warns against).

* :mod:`repro.baselines.filtering` — the Lattanzi–Moseley–Suri–Vassilvitskii
  (SPAA'11) MapReduce filtering algorithm: 2-approximate matching/VC in
  O(1/c) rounds with n^{1+c} memory.  The round-count comparison of the
  paper's MapReduce corollary is against this algorithm.
* :mod:`repro.baselines.bad_coresets` — the two provably bad coresets from
  §1.2: an arbitrary *maximal* matching (Ω(k)-approximate) and a minimum
  vertex cover of the piece (Ω(k)-approximate).
* :mod:`repro.baselines.naive` — send-everything and single-machine exact
  references.
"""

from repro.baselines.bad_coresets import (
    maximal_matching_coreset_protocol,
    min_vc_coreset_protocol,
)
from repro.baselines.filtering import FilteringResult, filtering_matching
from repro.baselines.naive import send_everything_protocol

__all__ = [
    "FilteringResult",
    "filtering_matching",
    "maximal_matching_coreset_protocol",
    "min_vc_coreset_protocol",
    "send_everything_protocol",
]
