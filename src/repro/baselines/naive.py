"""Naive reference protocols.

* ``send_everything_protocol`` — every machine forwards its whole piece.
  Exact output, Θ(m) total communication: the upper reference line in the
  communication plots (the paper's point is that Õ(nk) ≪ m bits suffice).
* ``single_machine_*`` — compute the optimum with no distribution at all:
  the ground-truth denominators for every approximation ratio.

.. deprecated::
    As *entry points* these are superseded by the unified solver facade —
    ``repro.solve.solve(graph, "matching.send_everything", ctx)`` etc.
    (see ``docs/SOLVER_API.md``); the protocol factories stay as the
    implementations the facade adapters call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.compose import compose_matching
from repro.cover.konig import konig_cover
from repro.cover.two_approx import matching_based_cover
from repro.dist.coordinator import SimultaneousProtocol
from repro.dist.message import Message
from repro.graph.bipartite import BipartiteGraph
from repro.graph.edgelist import Graph
from repro.matching.api import maximum_matching

__all__ = [
    "send_everything_protocol",
    "single_machine_matching",
    "single_machine_cover",
]


@dataclass(frozen=True)
class SendEverythingSummarizer:
    """Picklable whole-piece summarizer (process-executor safe)."""

    def __call__(self, piece, machine_index, rng, public=None) -> Message:
        del rng, public
        return Message(sender=machine_index, edges=piece.edges)


def send_everything_protocol(
    problem: str = "matching",
) -> SimultaneousProtocol[np.ndarray]:
    """Each machine ships its entire piece; the coordinator solves exactly
    (König for bipartite covers, 2-approx otherwise)."""
    if problem not in ("matching", "vertex_cover"):
        raise ValueError(f"unknown problem {problem!r}")

    def combine(coordinator, messages):
        if problem == "matching":
            return compose_matching(
                coordinator.n_vertices,
                [m.edges for m in messages],
                combiner="exact",
                template=coordinator.template,
            )
        union = coordinator.union_graph(messages)
        if isinstance(union, BipartiteGraph):
            return konig_cover(union)
        return matching_based_cover(union)

    return SimultaneousProtocol(
        name=f"send-everything[{problem}]",
        summarizer=SendEverythingSummarizer(),
        combine=combine,
    )


def single_machine_matching(graph: Graph) -> np.ndarray:
    """Optimal matching with no distribution (ratio denominator)."""
    return maximum_matching(graph)


def single_machine_cover(graph: Graph) -> np.ndarray:
    """Optimal (bipartite) or 2-approximate (general) cover, centralized."""
    if isinstance(graph, BipartiteGraph):
        return konig_cover(graph)
    return matching_based_cover(graph)
