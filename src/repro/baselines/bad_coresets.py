"""The provably bad coresets of §1.2.

* **Maximal matching as a coreset** — "one can easily show that this choice
  of coreset performs poorly in general; there are simple instances in which
  choosing arbitrary maximal matching in the graph G^(i) results only in an
  Ω(k)-approximation."  The failure needs the *arbitrary choice* freedom: we
  expose the edge-order policy so E2 can play the adversarial tie-breaker
  on the :func:`~repro.graph.generators.layered_maximal_trap` instance.

* **Minimum vertex cover as a coreset** — "there are simple instances (e.g.,
  a star on k vertices) on which this leads to an Ω(k) approximation ratio."
  Each machine of a randomly partitioned star sees ~deg/k leaves and may
  legitimately output the leaves instead of the center once its local piece
  makes that optimal or tie-equal; composing k such covers yields Ω(k)·VC.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.compose import compose_matching
from repro.cover.konig import konig_cover
from repro.dist.coordinator import SimultaneousProtocol
from repro.dist.message import Message
from repro.graph.bipartite import BipartiteGraph
from repro.matching.maximal import OrderPolicy, greedy_maximal_matching

# Summarizers are module-level dataclasses (not closures) so the bad
# coresets run on the process executor too — E2/E4 compare them against
# the good coresets under identical engines and backends.

__all__ = [
    "maximal_matching_coreset_protocol",
    "min_vc_coreset_protocol",
    "blocking_maximal_protocol",
]


@dataclass(frozen=True)
class MaximalMatchingSummarizer:
    """An (adversarially ordered) maximal matching of the piece."""

    order: OrderPolicy = "adversarial_key"

    def __call__(self, piece, machine_index, rng, public=None) -> Message:
        del public
        m = greedy_maximal_matching(piece, order=self.order, rng=rng)
        return Message(sender=machine_index, edges=m)


def maximal_matching_coreset_protocol(
    order: OrderPolicy = "adversarial_key",
    combiner: str = "exact",
) -> SimultaneousProtocol[np.ndarray]:
    """Each machine sends an (adversarially chosen) *maximal* matching."""

    def combine(coordinator, messages):
        return compose_matching(
            coordinator.n_vertices,
            [m.edges for m in messages],
            combiner=combiner,  # type: ignore[arg-type]
            template=coordinator.template,
        )

    return SimultaneousProtocol(
        name=f"maximal-matching-coreset[{order}]",
        summarizer=MaximalMatchingSummarizer(order=order),
        combine=combine,
    )


@dataclass(frozen=True)
class BlockingMaximalSummarizer:
    """The worst legal maximal matching on the hub instance (see
    :func:`blocking_maximal_protocol` for why this is still valid)."""

    hub_boundary: int

    def __call__(self, piece, machine_index, rng, public=None) -> Message:
        del public
        if not isinstance(piece, BipartiteGraph):
            raise TypeError("blocking_maximal_protocol expects bipartite pieces")
        e = piece.edges
        is_hub_edge = e[:, 1] >= self.hub_boundary
        hidden = e[~is_hub_edge]
        owners = np.unique(hidden[:, 0])
        owner_mask = np.zeros(piece.n_vertices, dtype=bool)
        if owners.size:
            owner_mask[owners] = True
        # Blocking subgraph: owner lefts x hubs.
        blockable = is_hub_edge & owner_mask[e[:, 0]]
        block_graph = piece.subgraph_from_mask(blockable)
        # A *maximum* matching of the blocking subgraph blocks the most
        # owners (saturating w.h.p. given the instance's hub slack).
        from repro.matching.hopcroft_karp import hopcroft_karp

        blocking = hopcroft_karp(block_graph)
        from repro.matching.maximal import complete_to_maximal

        maximal = complete_to_maximal(piece, blocking, order="input")
        return Message(sender=machine_index, edges=maximal)


def blocking_maximal_protocol(
    hub_boundary: int,
    combiner: str = "exact",
) -> SimultaneousProtocol[np.ndarray]:
    """The worst-case maximal matching on the
    :func:`~repro.graph.generators.hidden_matching_with_hubs` instance.

    "Maximal matching" as a coreset means *any* maximal matching is a legal
    output, so the adversary may pick the worst one.  On the hub instance
    the worst choice is explicit: first compute a maximum "blocking"
    matching from hidden-edge-owning lefts into the hub vertices (right ids
    ≥ ``hub_boundary``), then extend maximally.  When the blocking matching
    saturates the owners, no hidden edge is addable, and the machine's
    message carries only hub edges — which compose into an Ω(k)-bad union.

    This is still a *valid maximal matching of the piece*; tests assert
    that invariant.
    """

    def combine(coordinator, messages):
        return compose_matching(
            coordinator.n_vertices,
            [m.edges for m in messages],
            combiner=combiner,  # type: ignore[arg-type]
            template=coordinator.template,
        )

    return SimultaneousProtocol(
        name=f"blocking-maximal[hub>={hub_boundary}]",
        summarizer=BlockingMaximalSummarizer(hub_boundary=hub_boundary),
        combine=combine,
    )


def min_vc_coreset_protocol(
    prefer_leaves: bool = True,
) -> SimultaneousProtocol[np.ndarray]:
    """Each machine sends a minimum vertex cover of its *piece* as a fixed
    solution (no edges); the coordinator unions them.

    The output always covers G — every edge lies in some piece and is
    covered by that piece's cover — but its size composes additively.
    ``prefer_leaves=True`` resolves ties away from high-degree vertices,
    the adversarial (yet perfectly legal: any *minimum* cover is allowed)
    choice that realizes the star lower bound.
    """

    def combine(coordinator, messages):
        return coordinator.fixed_vertices(messages)

    return SimultaneousProtocol(
        name=f"min-vc-coreset[prefer_leaves={prefer_leaves}]",
        summarizer=MinVCSummarizer(prefer_leaves=prefer_leaves),
        combine=combine,
    )


@dataclass(frozen=True)
class MinVCSummarizer:
    """A minimum vertex cover of the piece, ties broken toward leaves."""

    prefer_leaves: bool = True

    def __call__(self, piece, machine_index, rng, public=None) -> Message:
        del rng, public
        if not isinstance(piece, BipartiteGraph):
            raise TypeError(
                "min_vc_coreset_protocol needs bipartite pieces (exact VC)"
            )
        if self.prefer_leaves:
            # König from the leaves' side: flip the bipartition so the cover
            # lands on the leaf side whenever both sides are minimum.
            flipped = _flip_bipartite(piece)
            cover_flipped = konig_cover(flipped)
            cover = _unflip_ids(cover_flipped, piece)
        else:
            cover = konig_cover(piece)
        return Message(sender=machine_index, fixed_vertices=cover)


def _flip_bipartite(g: BipartiteGraph) -> BipartiteGraph:
    """Swap the two sides of a bipartite graph (right ids become left)."""
    e = g.edges
    left_new = e[:, 1] - g.n_left
    right_new = e[:, 0]
    return BipartiteGraph.from_pairs(g.n_right, g.n_left, left_new, right_new)


def _unflip_ids(cover_flipped: np.ndarray, original: BipartiteGraph) -> np.ndarray:
    """Map vertex ids of the flipped graph back to the original layout."""
    c = np.asarray(cover_flipped, dtype=np.int64)
    is_left_flipped = c < original.n_right
    back = np.where(
        is_left_flipped,
        c + original.n_left,  # flipped-left = original right
        c - original.n_right,  # flipped-right = original left
    )
    return np.sort(back.astype(np.int64))
