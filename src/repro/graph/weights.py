"""Edge weights and the Crouch–Stubbs weight-class decomposition.

The paper (§1.1) extends both coresets to the weighted setting:

* weighted matching via the Crouch–Stubbs technique [22] — partition edges
  into geometric weight classes ``[(1+ε)^j, (1+ε)^{j+1})``, run the
  unweighted coreset inside each class, and greedily merge class solutions
  from the heaviest class down (a factor-2(1+ε) loss, O(log n) extra space);
* weighted vertex cover by the analogous "grouping by weight" of edges.

This module provides the weighted-graph container and the class
decomposition; the coreset logic lives in :mod:`repro.core.weighted`.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.graph.edgelist import Graph

__all__ = [
    "WeightedGraph",
    "align_edge_values",
    "has_edge_weights",
    "weight_classes",
    "WeightClass",
]


def align_edge_values(
    graph: Graph, raw_edges: np.ndarray, values: np.ndarray
) -> np.ndarray:
    """Map per-edge ``values`` given in ``raw_edges`` order onto ``graph``'s
    canonical edge order.

    For duplicate input edges the *first* occurrence's value wins, matching
    the dedupe rule of :class:`~repro.graph.edgelist.Graph`.  Shared by
    :class:`WeightedGraph` and the bipartite weighted/capacitated containers
    in :mod:`repro.graph.capacity`.
    """
    n = max(graph.n_vertices, 1)
    lo = np.minimum(raw_edges[:, 0], raw_edges[:, 1])
    hi = np.maximum(raw_edges[:, 0], raw_edges[:, 1])
    raw_keys = lo * np.int64(n) + hi
    first: dict[int, int] = {}
    for i, key in enumerate(raw_keys.tolist()):
        if key not in first:
            first[key] = i
    out = np.empty(graph.n_edges, dtype=np.float64)
    for j, key in enumerate(graph.edge_key_array.tolist()):
        out[j] = values[first[key]]
    return out


def has_edge_weights(graph: Graph) -> bool:
    """True when ``graph`` carries per-edge weights under the shared duck
    type (a ``weights`` array aligned with ``edges`` plus
    ``matching_weight``): :class:`WeightedGraph` or the bipartite
    containers of :mod:`repro.graph.capacity`."""
    return hasattr(graph, "weights") and hasattr(graph, "matching_weight")


class WeightedGraph(Graph):
    """A graph with positive edge weights aligned to the canonical edge order.

    Weights supplied at construction are re-aligned to the canonical
    (deduplicated, sorted) edge order; for duplicate input edges the *first*
    occurrence's weight wins, matching the dedupe rule of :class:`Graph`.
    """

    __slots__ = ("_weights",)

    def __init__(
        self,
        n_vertices: int,
        edges: np.ndarray,
        weights: np.ndarray,
        *,
        validated: bool = False,
    ) -> None:
        raw_edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (raw_edges.shape[0],):
            raise ValueError(
                f"weights must have shape ({raw_edges.shape[0]},), got {w.shape}"
            )
        if w.size and w.min() <= 0:
            raise ValueError("edge weights must be strictly positive")
        super().__init__(n_vertices, raw_edges, validated=validated)
        if validated:
            aligned = w
        else:
            aligned = align_edge_values(self, raw_edges, w)
        aligned = np.ascontiguousarray(aligned, dtype=np.float64)
        aligned.setflags(write=False)
        self._weights = aligned

    @property
    def weights(self) -> np.ndarray:
        """Edge weights aligned with :attr:`edges` (read-only)."""
        return self._weights

    def total_weight(self) -> float:
        return float(self._weights.sum())

    def subgraph_from_mask(self, mask: np.ndarray) -> "WeightedGraph":
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n_edges,):
            raise ValueError(
                f"mask must have shape ({self.n_edges},), got {mask.shape}"
            )
        return WeightedGraph(
            self.n_vertices, self.edges[mask], self._weights[mask], validated=True
        )

    def matching_weight(self, matching_edges: np.ndarray) -> float:
        """Total weight of the given (sub)set of this graph's edges."""
        from repro.utils.arrays import edge_keys

        if np.asarray(matching_edges).size == 0:
            return 0.0
        keys = edge_keys(matching_edges, max(self.n_vertices, 1))
        idx = np.searchsorted(self.edge_key_array, keys)
        if (idx >= self.n_edges).any() or (
            self.edge_key_array[np.minimum(idx, self.n_edges - 1)] != keys
        ).any():
            raise ValueError("matching contains edges not present in the graph")
        return float(self._weights[idx].sum())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WeightedGraph(n_vertices={self.n_vertices}, n_edges={self.n_edges}, "
            f"total_weight={self.total_weight():.4g})"
        )


@dataclass(frozen=True)
class WeightClass:
    """One geometric weight class: the subgraph of edges with weight in
    ``[lo, hi)`` (the top class is closed on the right)."""

    index: int
    lo: float
    hi: float
    graph: Graph
    edge_indices: np.ndarray  # rows into the parent WeightedGraph.edges


def weight_classes(
    wg: WeightedGraph, epsilon: float = 1.0
) -> list[WeightClass]:
    """Crouch–Stubbs geometric decomposition of a weighted graph.

    Edge ``e`` with weight ``w(e)`` lands in class ``j = floor(log_{1+ε}
    (w(e)/w_min))``.  There are ``O(log_{1+ε}(w_max/w_min))`` classes — the
    "extra O(log n) term in the space" the paper mentions when weights are
    polynomially bounded.  Classes are returned heaviest-first, the order in
    which the weighted combiner greedily merges them.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if wg.n_edges == 0:
        return []
    w = wg.weights
    w_min = float(w.min())
    base = 1.0 + epsilon
    cls_idx = np.floor(np.log(w / w_min) / np.log(base)).astype(np.int64)
    # Floating point can put w == w_min * base^j into class j-1; nudge up.
    cls_idx = np.maximum(cls_idx, 0)
    classes: list[WeightClass] = []
    for j in np.unique(cls_idx)[::-1]:
        rows = np.flatnonzero(cls_idx == j)
        sub = Graph(wg.n_vertices, wg.edges[rows], validated=True)
        classes.append(
            WeightClass(
                index=int(j),
                lo=w_min * base ** int(j),
                hi=w_min * base ** (int(j) + 1),
                graph=sub,
                edge_indices=rows,
            )
        )
    return classes
