"""Weighted and capacitated bipartite graphs (``b``-matching / AdWords).

The real-world workloads of :mod:`repro.workloads` need two containers the
seed library lacked:

* :class:`WeightedBipartiteGraph` — a bipartite graph whose edges carry
  positive weights (gMission task payoffs, MovieLens ratings).  It exposes
  the same weight duck type as :class:`~repro.graph.weights.WeightedGraph`
  (``weights`` aligned with ``edges``, ``matching_weight``,
  ``total_weight``) so the Crouch–Stubbs weight-class machinery works
  unchanged, while keeping the explicit bipartition that Hopcroft–Karp and
  the coreset protocols rely on.

* :class:`CapacitatedBipartiteGraph` — additionally assigns every *left*
  vertex an integer capacity ``b(u) >= 1``: a feasible solution is a
  ``b``-matching, i.e. an edge set using each right vertex at most once and
  each left vertex ``u`` at most ``b(u)`` times.  This is the AdWords /
  capacitated-assignment shape of the CORL exemplar (advertisers with
  budgets on the left, queries on the right).  Capacity-aware algorithms
  live in :mod:`repro.workloads.bmatching`; the solver facade gates
  capacity-*unaware* solvers off these inputs
  (:mod:`repro.solve.registry`).

Both containers keep the library's immutability contract: arrays are
re-aligned to the canonical edge order at construction and set read-only.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.graph.weights import align_edge_values

__all__ = ["WeightedBipartiteGraph", "CapacitatedBipartiteGraph"]


class WeightedBipartiteGraph(BipartiteGraph):
    """A bipartite graph with positive per-edge weights.

    Weights supplied at construction are re-aligned to the canonical
    (deduplicated, sorted) edge order; for duplicate input edges the first
    occurrence's weight wins, matching :class:`~repro.graph.edgelist.Graph`.
    """

    __slots__ = ("_weights",)

    def __init__(
        self,
        n_left: int,
        n_right: int,
        edges: np.ndarray | Sequence[tuple[int, int]] | None = None,
        weights: np.ndarray | Sequence[float] | None = None,
        *,
        validated: bool = False,
    ) -> None:
        raw_edges = np.asarray(
            [] if edges is None else edges, dtype=np.int64
        ).reshape(-1, 2)
        if weights is None:
            w = np.ones(raw_edges.shape[0], dtype=np.float64)
        else:
            w = np.asarray(weights, dtype=np.float64)
        if w.shape != (raw_edges.shape[0],):
            raise ValueError(
                f"weights must have shape ({raw_edges.shape[0]},), "
                f"got {w.shape}"
            )
        if w.size and w.min() <= 0:
            raise ValueError("edge weights must be strictly positive")
        super().__init__(n_left, n_right, raw_edges, validated=validated)
        aligned = w if validated else align_edge_values(self, raw_edges, w)
        aligned = np.ascontiguousarray(aligned, dtype=np.float64)
        aligned.setflags(write=False)
        self._weights = aligned

    # ------------------------------------------------------------------ #
    @classmethod
    def from_pairs_weighted(
        cls,
        n_left: int,
        n_right: int,
        left: np.ndarray | Sequence[int],
        right: np.ndarray | Sequence[int],
        weights: np.ndarray | Sequence[float],
    ) -> "WeightedBipartiteGraph":
        """Build from side-local index arrays plus per-edge weights."""
        left = np.asarray(left, dtype=np.int64)
        right = np.asarray(right, dtype=np.int64)
        if left.shape != right.shape:
            raise ValueError("left and right index arrays must have equal length")
        if left.size:
            if left.min() < 0 or left.max() >= n_left:
                raise ValueError(f"left indices out of range [0, {n_left})")
            if right.min() < 0 or right.max() >= n_right:
                raise ValueError(f"right indices out of range [0, {n_right})")
        edges = np.stack([left, right + n_left], axis=1)
        return cls(n_left, n_right, edges, weights)

    # weight duck type shared with WeightedGraph ----------------------- #
    @property
    def weights(self) -> np.ndarray:
        """Edge weights aligned with :attr:`edges` (read-only)."""
        return self._weights

    def total_weight(self) -> float:
        return float(self._weights.sum())

    def matching_weight(self, matching_edges: np.ndarray) -> float:
        """Total weight of the given (sub)set of this graph's edges."""
        from repro.utils.arrays import edge_keys

        if np.asarray(matching_edges).size == 0:
            return 0.0
        keys = edge_keys(matching_edges, max(self.n_vertices, 1))
        idx = np.searchsorted(self.edge_key_array, keys)
        if (idx >= self.n_edges).any() or (
            self.edge_key_array[np.minimum(idx, self.n_edges - 1)] != keys
        ).any():
            raise ValueError("matching contains edges not present in the graph")
        return float(self._weights[idx].sum())

    # ------------------------------------------------------------------ #
    def as_bipartite(self) -> BipartiteGraph:
        """Drop the weights: the underlying plain bipartite graph."""
        return BipartiteGraph(
            self.n_left, self.n_right, self.edges, validated=True
        )

    def subgraph_from_mask(self, mask: np.ndarray) -> "WeightedBipartiteGraph":
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n_edges,):
            raise ValueError(
                f"mask must have shape ({self.n_edges},), got {mask.shape}"
            )
        return WeightedBipartiteGraph(
            self.n_left, self.n_right, self.edges[mask],
            self._weights[mask], validated=True,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WeightedBipartiteGraph(n_left={self.n_left}, "
            f"n_right={self.n_right}, n_edges={self.n_edges}, "
            f"total_weight={self.total_weight():.4g})"
        )


class CapacitatedBipartiteGraph(WeightedBipartiteGraph):
    """A weighted bipartite graph with per-left-vertex integer capacities.

    ``capacities[u]`` is how many right vertices left vertex ``u`` may be
    matched to (``b``-matching).  ``capacities=None`` defaults to all-ones,
    and ``weights=None`` to unit weights, so the class degrades gracefully
    to ordinary bipartite matching while still advertising the capacitated
    contract to the solver facade's capability gate.
    """

    __slots__ = ("_capacities",)

    def __init__(
        self,
        n_left: int,
        n_right: int,
        edges: np.ndarray | Sequence[tuple[int, int]] | None = None,
        weights: np.ndarray | Sequence[float] | None = None,
        capacities: np.ndarray | Sequence[int] | None = None,
        *,
        validated: bool = False,
    ) -> None:
        super().__init__(n_left, n_right, edges, weights, validated=validated)
        if capacities is None:
            caps = np.ones(self.n_left, dtype=np.int64)
        else:
            caps = np.asarray(capacities, dtype=np.int64)
        if caps.shape != (self.n_left,):
            raise ValueError(
                f"capacities must have shape ({self.n_left},), got {caps.shape}"
            )
        if caps.size and caps.min() < 1:
            raise ValueError("capacities must be >= 1")
        caps = np.ascontiguousarray(caps)
        caps.setflags(write=False)
        self._capacities = caps

    # ------------------------------------------------------------------ #
    @classmethod
    def from_parts(
        cls,
        n_left: int,
        n_right: int,
        left: np.ndarray | Sequence[int],
        right: np.ndarray | Sequence[int],
        capacities: np.ndarray | Sequence[int],
        weights: np.ndarray | Sequence[float] | None = None,
    ) -> "CapacitatedBipartiteGraph":
        """Build from side-local index arrays + capacities (+ weights)."""
        left = np.asarray(left, dtype=np.int64)
        right = np.asarray(right, dtype=np.int64)
        if left.shape != right.shape:
            raise ValueError("left and right index arrays must have equal length")
        if left.size:
            if left.min() < 0 or left.max() >= n_left:
                raise ValueError(f"left indices out of range [0, {n_left})")
            if right.min() < 0 or right.max() >= n_right:
                raise ValueError(f"right indices out of range [0, {n_right})")
        edges = np.stack([left, right + n_left], axis=1)
        return cls(n_left, n_right, edges, weights, capacities)

    # ------------------------------------------------------------------ #
    @property
    def capacities(self) -> np.ndarray:
        """Per-left-vertex capacities ``b(u)`` (read-only, length n_left)."""
        return self._capacities

    def total_capacity(self) -> int:
        return int(self._capacities.sum())

    def b_matching_upper_bound(self) -> int:
        """A trivial upper bound on the maximum ``b``-matching size."""
        return int(min(self.total_capacity(), self.n_right, self.n_edges))

    def as_weighted_bipartite(self) -> WeightedBipartiteGraph:
        """Drop the capacities: the underlying weighted bipartite graph."""
        return WeightedBipartiteGraph(
            self.n_left, self.n_right, self.edges, self.weights,
            validated=True,
        )

    def subgraph_from_mask(self, mask: np.ndarray) -> "CapacitatedBipartiteGraph":
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n_edges,):
            raise ValueError(
                f"mask must have shape ({self.n_edges},), got {mask.shape}"
            )
        return CapacitatedBipartiteGraph(
            self.n_left, self.n_right, self.edges[mask],
            self.weights[mask], self._capacities, validated=True,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CapacitatedBipartiteGraph(n_left={self.n_left}, "
            f"n_right={self.n_right}, n_edges={self.n_edges}, "
            f"total_capacity={self.total_capacity()})"
        )
