"""Edge partitioning: the random k-partitioning at the heart of the paper,
plus the adversarial partitionings it contrasts against.

A *random k-partitioning* assigns every edge independently and uniformly to
one of ``k`` machines (paper, §1, "Randomized Composable Coresets").  The
paper's central claim is that this single change — random instead of
adversarial placement — moves matching and vertex cover from Ω(n²) summaries
to Õ(n) summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.graph.edgelist import Graph
from repro.utils.rng import RandomState, as_generator

__all__ = [
    "PartitionedGraph",
    "VertexPartitionedGraph",
    "random_k_partition",
    "random_vertex_partition",
    "partition_by_assignment",
    "adversarial_degree_partition",
]


@dataclass(frozen=True)
class PartitionedGraph:
    """A graph together with a k-way partition of its edge set.

    ``assignment[i]`` is the machine (in ``0..k-1``) that received edge ``i``
    of ``graph.edges``.  Pieces are materialized lazily as subgraph views on
    the full vertex set, matching the paper's model where every machine knows
    the vertex set ``V`` but only its own edges.
    """

    graph: Graph
    k: int
    assignment: np.ndarray  # (m,) int64 machine ids

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        a = np.asarray(self.assignment, dtype=np.int64)
        if a.shape != (self.graph.n_edges,):
            raise ValueError(
                f"assignment must have shape ({self.graph.n_edges},), got {a.shape}"
            )
        if a.size and (a.min() < 0 or a.max() >= self.k):
            raise ValueError(f"machine ids must lie in [0, {self.k})")
        object.__setattr__(self, "assignment", a)

    def piece(self, i: int) -> Graph:
        """The subgraph ``G^(i)`` given to machine ``i``."""
        if not 0 <= i < self.k:
            raise IndexError(f"machine index {i} out of range [0, {self.k})")
        return self.graph.subgraph_from_mask(self.assignment == i)

    def pieces(self) -> Iterator[Graph]:
        """Iterate over all ``k`` machine subgraphs."""
        for i in range(self.k):
            yield self.piece(i)

    def piece_edge_arrays(self) -> list[np.ndarray]:
        """All ``k`` per-machine edge arrays from one vectorized pass.

        ``piece(i)`` scans the full assignment once *per machine* — O(k·m)
        to materialize everything.  This method sorts the edge list by
        machine once (a stable argsort, so each machine's edges keep the
        canonical order ``piece(i).edges`` would have) and slices it, which
        is how :class:`~repro.dist.shm.SharedEdgeStore` packs a whole
        partition into one contiguous shared segment.  Entry ``i`` is
        bit-identical to ``piece(i).edges``.
        """
        order = np.argsort(self.assignment, kind="stable")
        stacked = self.graph.edges[order]
        counts = np.bincount(self.assignment, minlength=self.k)
        bounds = np.concatenate([[0], np.cumsum(counts)])
        return [stacked[bounds[i]:bounds[i + 1]] for i in range(self.k)]

    def piece_sizes(self) -> np.ndarray:
        """Number of edges per machine."""
        return np.bincount(self.assignment, minlength=self.k).astype(np.int64)

    def union(self) -> Graph:
        """Reassemble the full graph from the pieces (identity check)."""
        return self.graph


def random_k_partition(
    graph: Graph, k: int, rng: RandomState = None
) -> PartitionedGraph:
    """The paper's random k-partitioning: each edge goes to a uniformly
    random machine, independently."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    gen = as_generator(rng)
    assignment = gen.integers(0, k, size=graph.n_edges, dtype=np.int64)
    return PartitionedGraph(graph=graph, k=k, assignment=assignment)


def partition_by_assignment(
    graph: Graph, assignment: np.ndarray | Sequence[int], k: int | None = None
) -> PartitionedGraph:
    """Wrap an explicit edge→machine assignment (used by adversaries)."""
    a = np.asarray(assignment, dtype=np.int64)
    k = int(a.max()) + 1 if k is None else int(k)
    return PartitionedGraph(graph=graph, k=k, assignment=a)


# --------------------------------------------------------------------- #
# Adversarial partitionings (E7)
# --------------------------------------------------------------------- #
def adversarial_degree_partition(graph: Graph, k: int) -> PartitionedGraph:
    """A deterministic adversary that splits edges by endpoint locality.

    Edges are routed by ``min(u, v) mod k``, so each machine sees a vertex-
    disjoint-ish slice with heavily correlated structure — the opposite of
    the i.i.d. placement the coreset analysis needs.  Weaker than the
    decoy-gadget adversary of :mod:`repro.lowerbounds.adversary` but needs
    no knowledge of the optimum, mirroring the "data locality" sharding a
    real system might use by default.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if graph.n_edges == 0:
        return PartitionedGraph(graph=graph, k=k, assignment=np.zeros(0, np.int64))
    assignment = np.minimum(graph.edges[:, 0], graph.edges[:, 1]) % k
    return PartitionedGraph(graph=graph, k=k, assignment=assignment)


# --------------------------------------------------------------------- #
# Vertex partitioning (the [10] simultaneous model, §1.3)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class VertexPartitionedGraph:
    """A graph whose *vertices* are partitioned across k machines.

    This is the simultaneous model of [10] (Assadi–Khanna–Li–Yaroslavtsev)
    that the paper contrasts with in §1.3: machine ``i`` owns a vertex set
    ``V_i`` and sees **every edge incident on its vertices** — so an edge
    whose endpoints live on different machines is seen by both.  In that
    model even an O(√k)-approximation to matching needs more than Õ(n)
    communication per player; experiment E19 runs the edge-partition
    coresets here to chart the contrast on common workloads.

    ``vertex_assignment[v]`` is the owner machine of vertex ``v``.
    """

    graph: Graph
    k: int
    vertex_assignment: np.ndarray  # (n,) int64 machine ids

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        a = np.asarray(self.vertex_assignment, dtype=np.int64)
        if a.shape != (self.graph.n_vertices,):
            raise ValueError(
                f"vertex_assignment must have shape "
                f"({self.graph.n_vertices},), got {a.shape}"
            )
        if a.size and (a.min() < 0 or a.max() >= self.k):
            raise ValueError(f"machine ids must lie in [0, {self.k})")
        object.__setattr__(self, "vertex_assignment", a)

    def piece(self, i: int) -> Graph:
        """All edges incident on machine ``i``'s vertices (duplicated
        across machines for cross-machine edges, as the model specifies)."""
        if not 0 <= i < self.k:
            raise IndexError(f"machine index {i} out of range [0, {self.k})")
        e = self.graph.edges
        if e.size == 0:
            return self.graph.subgraph_from_mask(np.zeros(0, dtype=bool))
        owned = self.vertex_assignment == i
        mask = owned[e[:, 0]] | owned[e[:, 1]]
        return self.graph.subgraph_from_mask(mask)

    def pieces(self) -> Iterator[Graph]:
        for i in range(self.k):
            yield self.piece(i)

    def duplication_factor(self) -> float:
        """Average number of machines seeing each edge (1..2)."""
        if self.graph.n_edges == 0:
            return 0.0
        e = self.graph.edges
        dup = (
            self.vertex_assignment[e[:, 0]]
            != self.vertex_assignment[e[:, 1]]
        )
        return float(1.0 + dup.mean())


def random_vertex_partition(
    graph: Graph, k: int, rng: RandomState = None
) -> VertexPartitionedGraph:
    """Assign each vertex to a uniformly random machine."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    gen = as_generator(rng)
    assignment = gen.integers(0, k, size=graph.n_vertices, dtype=np.int64)
    return VertexPartitionedGraph(graph=graph, k=k, vertex_assignment=assignment)
