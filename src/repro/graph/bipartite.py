"""Bipartite graph wrapper.

The paper's hard distributions (``D_Matching``, ``D_VC``) and its MapReduce
experiments are bipartite; Hopcroft–Karp and König's theorem also require an
explicit bipartition.  We represent a bipartite graph as a plain
:class:`~repro.graph.edgelist.Graph` whose vertex ids are split as

* left side:  ``0 .. n_left - 1``
* right side: ``n_left .. n_left + n_right - 1``

so every algorithm written for ``Graph`` works unchanged, and bipartite-aware
algorithms can recover the sides in O(1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.edgelist import Graph

__all__ = ["BipartiteGraph"]


class BipartiteGraph(Graph):
    """A bipartite graph with an explicit (left, right) vertex split.

    Edges may be given either as global ids (left in ``[0, n_left)``, right
    in ``[n_left, n_left+n_right)``) or as side-local pairs via
    :meth:`from_pairs`.
    """

    __slots__ = ("_n_left", "_n_right")

    def __init__(
        self,
        n_left: int,
        n_right: int,
        edges: np.ndarray | Sequence[tuple[int, int]] | None = None,
        *,
        validated: bool = False,
    ) -> None:
        if n_left < 0 or n_right < 0:
            raise ValueError(f"side sizes must be non-negative: {n_left}, {n_right}")
        super().__init__(n_left + n_right, edges, validated=validated)
        self._n_left = int(n_left)
        self._n_right = int(n_right)
        if self.n_edges:
            u = self.edges[:, 0]
            v = self.edges[:, 1]
            # Canonical orientation guarantees u < v, so a bipartite edge must
            # have u on the left and v on the right.
            if (u >= self._n_left).any() or (v < self._n_left).any():
                raise ValueError("edges must connect the left side to the right side")

    # ------------------------------------------------------------------ #
    @classmethod
    def from_pairs(
        cls,
        n_left: int,
        n_right: int,
        left: np.ndarray | Sequence[int],
        right: np.ndarray | Sequence[int],
    ) -> "BipartiteGraph":
        """Build from side-local index arrays: edge i is (left[i], right[i]).

        ``left`` entries are in ``[0, n_left)`` and ``right`` entries in
        ``[0, n_right)``; the right side is shifted internally.
        """
        left = np.asarray(left, dtype=np.int64)
        right = np.asarray(right, dtype=np.int64)
        if left.shape != right.shape:
            raise ValueError("left and right index arrays must have equal length")
        if left.size:
            if left.min() < 0 or left.max() >= n_left:
                raise ValueError(f"left indices out of range [0, {n_left})")
            if right.min() < 0 or right.max() >= n_right:
                raise ValueError(f"right indices out of range [0, {n_right})")
        edges = np.stack([left, right + n_left], axis=1)
        return cls(n_left, n_right, edges)

    # ------------------------------------------------------------------ #
    @property
    def n_left(self) -> int:
        return self._n_left

    @property
    def n_right(self) -> int:
        return self._n_right

    @property
    def left_vertices(self) -> np.ndarray:
        return np.arange(self._n_left, dtype=np.int64)

    @property
    def right_vertices(self) -> np.ndarray:
        return np.arange(self._n_left, self._n_left + self._n_right, dtype=np.int64)

    def is_left(self, v: int | np.ndarray) -> bool | np.ndarray:
        return np.asarray(v) < self._n_left

    def local_right(self, v: int | np.ndarray) -> int | np.ndarray:
        """Convert a global right-side id to its side-local index."""
        return np.asarray(v) - self._n_left

    # Bipartite subgraphs keep the same split. ------------------------- #
    def subgraph_from_mask(self, mask: np.ndarray) -> "BipartiteGraph":
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n_edges,):
            raise ValueError(
                f"mask must have shape ({self.n_edges},), got {mask.shape}"
            )
        return BipartiteGraph(
            self._n_left, self._n_right, self.edges[mask], validated=True
        )

    def union(self, *others: Graph) -> "BipartiteGraph":
        g = super().union(*others)
        return BipartiteGraph(self._n_left, self._n_right, g.edges, validated=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BipartiteGraph(n_left={self._n_left}, n_right={self._n_right}, "
            f"n_edges={self.n_edges})"
        )
