"""Graph generators for the paper's workloads.

Three families:

1. **Benchmark workloads** — Erdős–Rényi graphs (general and bipartite),
   planted-matching graphs, skewed-degree graphs.  Used by E1/E3/E8/E12/E13.
2. **Counterexample instances** — the layered instance on which a maximal
   (not maximum) matching coreset degrades to Ω(k) (§1.2), and the star
   instance on which min-VC-as-coreset degrades to Ω(k).  Used by E2/E4.
3. **Primitive pieces** — random perfect matchings, random d-regular-ish
   bipartite graphs — reused by the hard distributions in
   :mod:`repro.lowerbounds`.

All samplers take an explicit RNG (see :mod:`repro.utils.rng`) — an
``np.random.Generator``, a ``SeedSequence``, an int seed, or ``None`` for
fresh entropy, coerced once through :func:`~repro.utils.rng.as_generator` —
and are fully vectorized: Bernoulli edge sets are drawn via the
binomial-count + index-unranking trick rather than materializing an n×n
probability matrix.  No sampler touches numpy's global RNG
(``np.random.seed``-style state); passing the same ``Generator`` instance
twice advances it, passing the same *seed* twice reproduces the graph
(``tests/test_graph_generators.py`` pins both properties).
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.graph.edgelist import Graph
from repro.utils.rng import RandomState, as_generator

__all__ = [
    "gnp",
    "bipartite_gnp",
    "bipartite_gnm",
    "random_perfect_matching",
    "random_left_regular",
    "planted_matching_gnp",
    "skewed_bipartite",
    "star_forest",
    "bipartite_star_forest",
    "hidden_matching_with_hubs",
    "power_law_bipartite",
    "clustered_bipartite",
    "degree_sequence_bipartite",
    "layered_maximal_trap",
    "path_graph",
    "complete_graph",
    "complete_bipartite",
]


# --------------------------------------------------------------------- #
# Bernoulli samplers
# --------------------------------------------------------------------- #
def _sample_pair_indices(n_pairs_total: int, p: float, rng: np.random.Generator) -> np.ndarray:
    """Sample each of ``n_pairs_total`` potential items independently w.p. ``p``,
    returning the *indices* of the chosen items.

    Implemented as: draw the Binomial(n, p) count, then choose that many
    distinct indices uniformly — an exact sampling of the same distribution
    that avoids allocating a length-``n_pairs_total`` uniform array when
    ``p`` is small (the regime the paper's distributions live in).
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {p}")
    if n_pairs_total == 0 or p == 0.0:
        return np.zeros(0, dtype=np.int64)
    count = rng.binomial(n_pairs_total, p)
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    return rng.choice(n_pairs_total, size=count, replace=False).astype(np.int64)


def gnp(n: int, p: float, rng: RandomState = None) -> Graph:
    """Erdős–Rényi ``G(n, p)`` on ``n`` vertices.

    Every one of the ``n(n-1)/2`` unordered pairs is an edge independently
    with probability ``p``.
    """
    gen = as_generator(rng)
    total = n * (n - 1) // 2
    idx = _sample_pair_indices(total, p, gen)
    if idx.size == 0:
        return Graph(n)
    # Unrank the linear index of pair (u, v), u < v, in colexicographic
    # order: index(u, v) = v*(v-1)/2 + u.
    v = np.floor((1.0 + np.sqrt(1.0 + 8.0 * idx.astype(np.float64))) / 2.0).astype(
        np.int64
    )
    # Guard against floating point boundary errors on huge indices.
    v = np.where(v * (v - 1) // 2 > idx, v - 1, v)
    v = np.where((v + 1) * v // 2 <= idx, v + 1, v)
    u = idx - v * (v - 1) // 2
    return Graph(n, np.stack([u, v], axis=1), validated=False)


def bipartite_gnp(
    n_left: int, n_right: int, p: float, rng: RandomState = None
) -> BipartiteGraph:
    """Bipartite ``G(n_left, n_right, p)``: each left-right pair is an edge
    independently with probability ``p``."""
    gen = as_generator(rng)
    idx = _sample_pair_indices(n_left * n_right, p, gen)
    if idx.size == 0:
        return BipartiteGraph(n_left, n_right)
    left = idx // n_right
    right = idx % n_right
    return BipartiteGraph.from_pairs(n_left, n_right, left, right)


def bipartite_gnm(
    n_left: int, n_right: int, m: int, rng: RandomState = None
) -> BipartiteGraph:
    """Bipartite graph with exactly ``m`` distinct edges chosen uniformly."""
    total = n_left * n_right
    if m > total:
        raise ValueError(f"cannot place {m} distinct edges among {total} pairs")
    gen = as_generator(rng)
    idx = gen.choice(total, size=m, replace=False).astype(np.int64)
    return BipartiteGraph.from_pairs(n_left, n_right, idx // n_right, idx % n_right)


# --------------------------------------------------------------------- #
# Structured pieces
# --------------------------------------------------------------------- #
def random_perfect_matching(
    n_left: int,
    n_right: int,
    size: int | None = None,
    rng: RandomState = None,
) -> BipartiteGraph:
    """A uniformly random matching of ``size`` edges between the two sides.

    With ``size=None`` a perfect matching of ``min(n_left, n_right)`` edges.
    This is the building block of the paper's ``E_{A̅B̅}`` (hard distribution
    for matching, §4.1).
    """
    gen = as_generator(rng)
    if size is None:
        size = min(n_left, n_right)
    if size > min(n_left, n_right):
        raise ValueError(
            f"matching of size {size} impossible between sides of "
            f"{n_left} and {n_right}"
        )
    left = gen.choice(n_left, size=size, replace=False).astype(np.int64)
    right = gen.choice(n_right, size=size, replace=False).astype(np.int64)
    return BipartiteGraph.from_pairs(n_left, n_right, left, right)


def random_left_regular(
    n_left: int, n_right: int, degree: int, rng: RandomState = None
) -> BipartiteGraph:
    """Each left vertex picks ``degree`` random distinct right neighbors.

    This is the "k random neighbors" construction of the ``D_VC`` hard
    distribution (§5.3) and an approximation of a random k-regular graph as
    used in §1.2's sketch of the matching lower bound.
    """
    if degree > n_right:
        raise ValueError(f"degree {degree} exceeds right side size {n_right}")
    gen = as_generator(rng)
    if n_left == 0 or degree == 0:
        return BipartiteGraph(n_left, n_right)
    # Vectorized distinct sampling per row via argpartition of random keys
    # would be O(n_left * n_right); instead use repeated sampling with a
    # per-row dedupe, which is fast because degree << n_right in all uses.
    rows = []
    cols = []
    for u in range(n_left):
        nbrs = gen.choice(n_right, size=degree, replace=False)
        rows.append(np.full(degree, u, dtype=np.int64))
        cols.append(nbrs.astype(np.int64))
    return BipartiteGraph.from_pairs(
        n_left, n_right, np.concatenate(rows), np.concatenate(cols)
    )


def planted_matching_gnp(
    n_left: int,
    n_right: int,
    p: float,
    planted_size: int | None = None,
    rng: RandomState = None,
) -> tuple[BipartiteGraph, np.ndarray]:
    """Bipartite Gnp plus a planted perfect matching.

    Guarantees ``MM(G) >= planted_size`` so approximation ratios can be
    bounded without running an exact matcher on huge instances.  Returns the
    graph and the planted matching's ``(size, 2)`` edge array (global ids).
    """
    gen = as_generator(rng)
    base = bipartite_gnp(n_left, n_right, p, gen)
    planted = random_perfect_matching(n_left, n_right, planted_size, gen)
    return base.union(planted), planted.edges


def skewed_bipartite(
    n_left: int,
    n_right: int,
    hub_count: int,
    hub_degree: int,
    leaf_p: float,
    rng: RandomState = None,
) -> BipartiteGraph:
    """A skewed-degree bipartite graph: ``hub_count`` left hubs of degree
    ``hub_degree`` plus background Gnp noise at rate ``leaf_p``.

    Exercises the VC coreset's peeling schedule across many degree scales
    (hubs are peeled in early iterations, noise survives to the residual).
    """
    gen = as_generator(rng)
    if hub_count > n_left:
        raise ValueError(f"hub_count {hub_count} exceeds n_left {n_left}")
    noise = bipartite_gnp(n_left, n_right, leaf_p, gen)
    if hub_count == 0 or hub_degree == 0:
        return noise
    hubs = gen.choice(n_left, size=hub_count, replace=False).astype(np.int64)
    rows = np.repeat(hubs, hub_degree)
    cols = np.concatenate(
        [
            gen.choice(n_right, size=hub_degree, replace=False).astype(np.int64)
            for _ in range(hub_count)
        ]
    )
    hubs_graph = BipartiteGraph.from_pairs(n_left, n_right, rows, cols)
    return noise.union(hubs_graph)


def star_forest(n_stars: int, leaves_per_star: int) -> Graph:
    """Disjoint union of ``n_stars`` stars with ``leaves_per_star`` leaves.

    The paper's §1.2 counterexample for min-VC-as-coreset is "a star on k
    vertices": the optimal cover is the centers, but each machine sees a
    partial star and may certify the wrong side.  Centers get the low ids
    ``0..n_stars-1``; leaves follow.
    """
    if n_stars < 0 or leaves_per_star < 0:
        raise ValueError("star parameters must be non-negative")
    n = n_stars * (1 + leaves_per_star)
    centers = np.repeat(np.arange(n_stars, dtype=np.int64), leaves_per_star)
    leaves = np.arange(n_stars * leaves_per_star, dtype=np.int64) + n_stars
    return Graph(n, np.stack([centers, leaves], axis=1))


def hidden_matching_with_hubs(
    k: int,
    width: int,
    hub_slack: int = 2,
    rng: RandomState = None,
) -> tuple[BipartiteGraph, int, int]:
    """The Ω(k) instance for maximal-matching coresets (§1.2).

    A perfect hidden matching ``l_j – r_j`` on ``N = k·width`` pairs, plus a
    small set of ``H = hub_slack·width`` right-side *hub* vertices with each
    left vertex connected to ``min(H, 8k)`` random hubs.

    Under a random k-partition each machine owns ~``width`` hidden edges.
    A *maximum* matching of the piece must keep (almost) all of them —
    hidden edges are vertex-disjoint from each other and hubs can absorb at
    most ``H ≪ N/k·k`` lefts globally.  But a worst-case *maximal* matching
    may first match every hidden-edge-owning left to a hub (per piece there
    are ~``width`` such lefts and ``2·width`` hubs, so a saturating
    "blocking" matching exists w.h.p.), leaving no hidden edge addable.
    The union of such coresets then only contains hub edges, whose maximum
    matching is ≤ H = 2·width ≈ 2N/k, an Ω(k) gap from MM(G) ≥ N.

    Returns ``(graph, N, hub_count)``; the hubs are the right-side global
    ids ``N + N .. N + N + hub_count - 1`` (left ids ``0..N-1``, non-hub
    right ids ``N..2N-1``).
    """
    if k < 1 or width < 1:
        raise ValueError("k and width must be >= 1")
    if hub_slack < 1:
        raise ValueError("hub_slack must be >= 1")
    gen = as_generator(rng)
    n_pairs = k * width
    n_hubs = hub_slack * width
    hub_degree = min(n_hubs, 8 * k)

    hidden_left = np.arange(n_pairs, dtype=np.int64)
    hidden_right = np.arange(n_pairs, dtype=np.int64)
    hub_rows = np.repeat(hidden_left, hub_degree)
    hub_cols = np.concatenate(
        [
            gen.choice(n_hubs, size=hub_degree, replace=False).astype(np.int64)
            for _ in range(n_pairs)
        ]
    ) + n_pairs
    left = np.concatenate([hidden_left, hub_rows])
    right = np.concatenate([hidden_right, hub_cols])
    graph = BipartiteGraph.from_pairs(n_pairs, n_pairs + n_hubs, left, right)
    return graph, n_pairs, n_hubs


def bipartite_star_forest(n_stars: int, leaves_per_star: int) -> BipartiteGraph:
    """Disjoint stars with centers on the left and leaves on the right.

    The §1.2 counterexample workload for min-VC-as-coreset: VC(G) = n_stars
    (the centers), but a machine seeing a single star edge may legally
    certify the leaf.  Center ``s`` is left vertex ``s``; its leaves are
    right vertices ``s*leaves_per_star .. (s+1)*leaves_per_star - 1``.
    """
    if n_stars < 0 or leaves_per_star < 1:
        raise ValueError("need n_stars >= 0 and leaves_per_star >= 1")
    centers = np.repeat(np.arange(n_stars, dtype=np.int64), leaves_per_star)
    leaves = np.arange(n_stars * leaves_per_star, dtype=np.int64)
    return BipartiteGraph.from_pairs(
        n_stars, n_stars * leaves_per_star, centers, leaves
    )


def layered_maximal_trap(k: int, width: int, rng: RandomState = None) -> tuple[Graph, int]:
    """The Ω(k) counterexample for maximal-matching coresets (§1.2).

    Construction: a bipartite graph ``L = L0 ∪ L1``, ``R = R0 ∪ R1`` with
    ``|L0| = |R0| = width`` and ``|L1| = |R1| = k * width``:

    * a *trap biclique* between ``L0`` and ``R0`` (dense: each machine keeps
      seeing L0–R0 edges and a lazy maximal matching happily matches L0 into
      R0 ... killing both sides of the real matching);
    * a perfect matching ``L0 → R1`` and a perfect matching ``R0 ← L1``
      spread thinly so each machine sees only ~width/k of them.

    The true maximum matching has size ``≈ 2·width`` (match L0 into R1 and
    R0 into L1); an adversarially lazy maximal matching that prefers trap
    edges keeps only ``width`` edges *total* in each coreset and the union
    collapses.  With random partitioning a *maximum* matching per machine
    escapes the trap (Theorem 1), which is exactly what E2 measures.

    Returns ``(graph, optimal_matching_size)``.
    """
    if k < 1 or width < 1:
        raise ValueError("k and width must be >= 1")
    gen = as_generator(rng)
    n_l0 = n_r0 = width
    n_l1 = n_r1 = width
    # Vertex layout: [L0 | L1 | R0 | R1]
    l0 = np.arange(n_l0, dtype=np.int64)
    l1 = np.arange(n_l1, dtype=np.int64) + n_l0
    r0 = np.arange(n_r0, dtype=np.int64) + n_l0 + n_l1
    r1 = np.arange(n_r1, dtype=np.int64) + n_l0 + n_l1 + n_r0
    n = n_l0 + n_l1 + n_r0 + n_r1
    # Trap biclique L0 x R0.
    trap = np.stack(
        [np.repeat(l0, n_r0), np.tile(r0, n_l0)], axis=1
    )
    # Real matchings: L0 -> R1 and L1 -> R0 (random bijections).
    m1 = np.stack([l0, r1[gen.permutation(n_r1)]], axis=1)
    m2 = np.stack([l1[gen.permutation(n_l1)], r0], axis=1)
    g = Graph(n, np.vstack([trap, m1, m2]))
    return g, 2 * width


def power_law_bipartite(
    n_left: int,
    n_right: int,
    avg_degree: float,
    exponent: float = 2.5,
    rng: RandomState = None,
) -> BipartiteGraph:
    """Configuration-model bipartite graph with power-law left degrees.

    Left vertex ``i`` draws a target degree from a Pareto-like distribution
    with tail exponent ``exponent``, scaled so the mean is ``avg_degree``;
    stubs are matched to uniformly random right vertices (duplicate edges
    collapse, so realized degrees are a lower bound on targets).  This is
    the classic heavy-tailed workload shape (web graphs, tag bipartite
    graphs) and exercises the coresets far from the Gnp regime: a handful
    of vertices carry Θ(n) edges while the median vertex carries O(1).
    """
    if avg_degree <= 0:
        raise ValueError(f"avg_degree must be positive, got {avg_degree}")
    if exponent <= 1.0:
        raise ValueError(f"exponent must exceed 1, got {exponent}")
    gen = as_generator(rng)
    if n_left == 0 or n_right == 0:
        return BipartiteGraph(n_left, n_right)
    # Pareto(a) has mean a/(a-1) for a > 1; rescale to the requested mean.
    raw = gen.pareto(exponent - 1.0, size=n_left) + 1.0
    raw *= avg_degree / max(raw.mean(), 1e-12)
    degrees = np.minimum(
        np.maximum(1, np.round(raw)).astype(np.int64), n_right
    )
    rows = np.repeat(np.arange(n_left, dtype=np.int64), degrees)
    cols = gen.integers(0, n_right, size=int(degrees.sum()), dtype=np.int64)
    return BipartiteGraph.from_pairs(n_left, n_right, rows, cols)


def degree_sequence_bipartite(
    left_degrees: np.ndarray,
    n_right: int,
    right_weights: np.ndarray | None = None,
    rng: RandomState = None,
) -> BipartiteGraph:
    """Configuration-model bipartite graph from an explicit left degree
    sequence.

    Left vertex ``i`` emits ``left_degrees[i]`` stubs; each stub attaches to
    a right vertex drawn from ``right_weights`` (uniform when ``None``),
    independently.  Duplicate edges collapse, so realized degrees are a
    lower bound on targets — the same convention as
    :func:`power_law_bipartite`.  This is the *degree-sequence replay*
    primitive behind the dataset-backed workloads
    (:mod:`repro.workloads.datasets`): resampling an empirical degree
    sequence reproduces a real dataset's degree distribution at any scale
    without shipping the full dataset.
    """
    degrees = np.asarray(left_degrees, dtype=np.int64)
    if degrees.ndim != 1:
        raise ValueError(f"left_degrees must be 1-D, got shape {degrees.shape}")
    if degrees.size and degrees.min() < 0:
        raise ValueError("left degrees must be non-negative")
    if n_right < 0:
        raise ValueError(f"n_right must be non-negative, got {n_right}")
    gen = as_generator(rng)
    n_left = degrees.shape[0]
    total = int(degrees.sum())
    if n_left == 0 or n_right == 0 or total == 0:
        return BipartiteGraph(n_left, n_right)
    if right_weights is not None:
        w = np.asarray(right_weights, dtype=np.float64)
        if w.shape != (n_right,):
            raise ValueError(
                f"right_weights must have shape ({n_right},), got {w.shape}"
            )
        if w.min() < 0 or w.sum() <= 0:
            raise ValueError("right_weights must be non-negative with a "
                             "positive sum")
        p = w / w.sum()
    else:
        p = None
    rows = np.repeat(np.arange(n_left, dtype=np.int64), degrees)
    cols = gen.choice(n_right, size=total, replace=True, p=p).astype(np.int64)
    return BipartiteGraph.from_pairs(n_left, n_right, rows, cols)


def clustered_bipartite(
    n_blocks: int,
    block_size: int,
    p_in: float,
    p_out: float,
    rng: RandomState = None,
) -> BipartiteGraph:
    """Stochastic-block bipartite graph: dense within-community blocks plus
    sparse cross-community noise.

    Community structure is the adversary's friend in partitioned
    computation (locality-correlated edges are exactly what random
    partitioning destroys), making this the most demanding of the
    robustness-sweep families for a fixed edge budget.
    """
    if n_blocks < 1 or block_size < 1:
        raise ValueError("n_blocks and block_size must be >= 1")
    gen = as_generator(rng)
    n = n_blocks * block_size
    parts = []
    # Dense diagonal blocks.
    for b in range(n_blocks):
        idx = _sample_pair_indices(block_size * block_size, p_in, gen)
        if idx.size:
            rows = b * block_size + idx // block_size
            cols = b * block_size + idx % block_size
            parts.append(np.stack([rows, cols], axis=1))
    # Sparse background across everything.
    idx = _sample_pair_indices(n * n, p_out, gen)
    if idx.size:
        parts.append(np.stack([idx // n, idx % n], axis=1))
    if parts:
        all_pairs = np.vstack(parts)
        return BipartiteGraph.from_pairs(
            n, n, all_pairs[:, 0], all_pairs[:, 1]
        )
    return BipartiteGraph(n, n)


# --------------------------------------------------------------------- #
# Deterministic small graphs (tests, examples)
# --------------------------------------------------------------------- #
def path_graph(n: int) -> Graph:
    """The path ``0-1-2-...-(n-1)``."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if n < 2:
        return Graph(n)
    idx = np.arange(n - 1, dtype=np.int64)
    return Graph(n, np.stack([idx, idx + 1], axis=1))


def complete_graph(n: int) -> Graph:
    """The complete graph ``K_n``."""
    u, v = np.triu_indices(n, k=1)
    return Graph(n, np.stack([u.astype(np.int64), v.astype(np.int64)], axis=1))


def complete_bipartite(n_left: int, n_right: int) -> BipartiteGraph:
    """The complete bipartite graph ``K_{n_left, n_right}``."""
    left = np.repeat(np.arange(n_left, dtype=np.int64), n_right)
    right = np.tile(np.arange(n_right, dtype=np.int64), n_left)
    return BipartiteGraph.from_pairs(n_left, n_right, left, right)
