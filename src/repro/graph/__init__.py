"""Graph substrate: immutable numpy edge-list graphs, CSR adjacency,
generators, and edge partitioning.

This package deliberately avoids networkx in every hot path (networkx is used
only as a slow test oracle).  A graph is ``n`` vertices labelled
``0..n-1`` plus an ``(m, 2)`` int64 array of canonical undirected edges.
"""

from repro.graph.bipartite import BipartiteGraph
from repro.graph.csr import CSRAdjacency
from repro.graph.edgelist import Graph
from repro.graph.partition import (
    PartitionedGraph,
    adversarial_degree_partition,
    random_k_partition,
)
from repro.graph.weights import WeightedGraph, weight_classes

__all__ = [
    "BipartiteGraph",
    "CSRAdjacency",
    "Graph",
    "PartitionedGraph",
    "WeightedGraph",
    "adversarial_degree_partition",
    "random_k_partition",
    "weight_classes",
]
