"""Graph substrate: immutable numpy edge-list graphs, CSR adjacency,
generators, and edge partitioning.

This package deliberately avoids networkx in every hot path (networkx is used
only as a slow test oracle).  A graph is ``n`` vertices labelled
``0..n-1`` plus an ``(m, 2)`` int64 array of canonical undirected edges.
"""

from repro.graph.bipartite import BipartiteGraph
from repro.graph.capacity import CapacitatedBipartiteGraph, WeightedBipartiteGraph
from repro.graph.csr import CSRAdjacency
from repro.graph.edgelist import Graph
from repro.graph.partition import (
    PartitionedGraph,
    adversarial_degree_partition,
    random_k_partition,
)
from repro.graph.weights import WeightedGraph, has_edge_weights, weight_classes

__all__ = [
    "BipartiteGraph",
    "CSRAdjacency",
    "CapacitatedBipartiteGraph",
    "Graph",
    "PartitionedGraph",
    "WeightedBipartiteGraph",
    "WeightedGraph",
    "adversarial_degree_partition",
    "has_edge_weights",
    "random_k_partition",
    "weight_classes",
]
