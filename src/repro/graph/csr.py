"""Compressed-sparse-row adjacency built from an edge list.

CSR gives O(1) slicing of a vertex's neighbor array, which is what the
matching algorithms (Hopcroft–Karp BFS/DFS, blossom search) need in their
inner loops.  Construction is fully vectorized: duplicate each edge in both
directions, sort by source with ``argsort``, then ``bincount`` + ``cumsum``
for the row pointers — O(m log m) with no Python-level per-edge work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CSRAdjacency"]


@dataclass(frozen=True)
class CSRAdjacency:
    """Read-only CSR adjacency: ``indices[indptr[v]:indptr[v+1]]`` are the
    neighbors of ``v``, sorted ascending within each row."""

    n_vertices: int
    indptr: np.ndarray  # (n+1,) int64
    indices: np.ndarray  # (2m,) int64

    @classmethod
    def from_edges(cls, n_vertices: int, edges: np.ndarray) -> "CSRAdjacency":
        edges = np.asarray(edges, dtype=np.int64)
        if edges.size == 0:
            indptr = np.zeros(n_vertices + 1, dtype=np.int64)
            indices = np.zeros(0, dtype=np.int64)
        else:
            src = np.concatenate([edges[:, 0], edges[:, 1]])
            dst = np.concatenate([edges[:, 1], edges[:, 0]])
            # Sort primarily by src, secondarily by dst, in one argsort over
            # the combined scalar key (fits in int64 for n ≤ ~3e9).
            order = np.argsort(src * np.int64(max(n_vertices, 1)) + dst, kind="stable")
            src = src[order]
            indices = dst[order]
            counts = np.bincount(src, minlength=n_vertices)
            indptr = np.zeros(n_vertices + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
        indptr.setflags(write=False)
        indices.setflags(write=False)
        return cls(n_vertices=int(n_vertices), indptr=indptr, indices=indices)

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbor array of ``v`` (a read-only view, no copy)."""
        if not 0 <= v < self.n_vertices:
            raise IndexError(f"vertex {v} out of range [0, {self.n_vertices})")
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        if not 0 <= v < self.n_vertices:
            raise IndexError(f"vertex {v} out of range [0, {self.n_vertices})")
        return int(self.indptr[v + 1] - self.indptr[v])

    @property
    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRAdjacency(n_vertices={self.n_vertices}, "
            f"n_directed_edges={self.indices.shape[0]})"
        )
