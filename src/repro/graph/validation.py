"""Structural validators shared by tests and protocol assertions.

Validators return ``(ok, message)`` pairs rather than raising, so protocol
code can use them as cheap runtime checks and tests can assert on the
message.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.graph.edgelist import Graph
from repro.graph.partition import PartitionedGraph

__all__ = [
    "check_graph",
    "check_bipartite",
    "check_partition",
    "edges_subset_of",
]


def check_graph(g: Graph) -> tuple[bool, str]:
    """Validate the canonical-edge invariants of a :class:`Graph`."""
    e = g.edges
    if e.ndim != 2 or e.shape[1] != 2:
        return False, f"edge array has shape {e.shape}, expected (m, 2)"
    if e.size == 0:
        return True, "ok"
    if (e[:, 0] >= e[:, 1]).any():
        return False, "edges are not canonically oriented (u < v)"
    if e.min() < 0 or e.max() >= g.n_vertices:
        return False, "edge endpoint out of vertex range"
    keys = e[:, 0] * np.int64(max(g.n_vertices, 1)) + e[:, 1]
    if (np.diff(keys) <= 0).any():
        return False, "edges are not strictly sorted by key (duplicate edge?)"
    return True, "ok"


def check_bipartite(g: BipartiteGraph) -> tuple[bool, str]:
    """Validate the side constraint of a :class:`BipartiteGraph`."""
    ok, msg = check_graph(g)
    if not ok:
        return ok, msg
    if g.n_edges == 0:
        return True, "ok"
    if (g.edges[:, 0] >= g.n_left).any():
        return False, "left endpoint lies on the right side"
    if (g.edges[:, 1] < g.n_left).any():
        return False, "right endpoint lies on the left side"
    return True, "ok"


def check_partition(p: PartitionedGraph) -> tuple[bool, str]:
    """Each edge assigned exactly once; pieces reassemble the graph."""
    if p.assignment.shape != (p.graph.n_edges,):
        return False, "assignment length mismatch"
    if p.assignment.size and (p.assignment.min() < 0 or p.assignment.max() >= p.k):
        return False, "machine id out of range"
    total = int(p.piece_sizes().sum())
    if total != p.graph.n_edges:
        return False, f"pieces hold {total} edges, graph has {p.graph.n_edges}"
    merged = Graph(p.graph.n_vertices).union(*list(p.pieces()))
    if merged != Graph(p.graph.n_vertices, p.graph.edges, validated=True):
        return False, "union of pieces differs from the original graph"
    return True, "ok"


def edges_subset_of(candidate: np.ndarray, g: Graph) -> tuple[bool, str]:
    """Check every row of ``candidate`` is an edge of ``g``."""
    from repro.utils.arrays import isin_mask

    cand = np.asarray(candidate, dtype=np.int64)
    if cand.size == 0:
        return True, "ok"
    mask = isin_mask(cand, g.edges, g.n_vertices)
    if mask.all():
        return True, "ok"
    bad = cand[~mask][0]
    return False, f"edge ({bad[0]}, {bad[1]}) not present in the graph"
