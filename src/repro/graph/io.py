"""Graph serialization: compact ``.npz`` round trips and a human-readable
edge-list text format.

Used by the examples (to cache generated workloads between runs), by the
workload cache (:mod:`repro.workloads.cache` stores each fetched dataset as
a single ``.npz`` artifact), and by tests exercising the round-trip
invariants.

npz schema
----------
* **v1** (seed): ``kind`` ∈ {plain, bipartite, weighted}, ``shape``,
  ``edges``, and ``weights`` for the weighted kind.  No ``version`` key.
* **v2** (this file): adds a ``version`` array, plus two bipartite kinds —
  ``weighted_bipartite`` (per-edge ``weights``) and ``capacitated``
  (``weights`` + per-left-vertex ``capacities``) — so a fetched workload
  (graph + weights + capacities) caches as one artifact.  v1 files load
  unchanged: a missing ``version`` key means v1.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.graph.capacity import CapacitatedBipartiteGraph, WeightedBipartiteGraph
from repro.graph.edgelist import Graph
from repro.graph.weights import WeightedGraph

__all__ = ["SCHEMA_VERSION", "save_npz", "load_npz",
           "dumps_edgelist", "loads_edgelist"]

SCHEMA_VERSION = 2

_KIND_PLAIN = 0
_KIND_BIPARTITE = 1
_KIND_WEIGHTED = 2
_KIND_WEIGHTED_BIPARTITE = 3
_KIND_CAPACITATED = 4


def save_npz(path: str | Path, g: Graph) -> None:
    """Serialize a graph (plain, bipartite, weighted, weighted-bipartite,
    or capacitated-bipartite) to ``.npz``."""
    payload: dict[str, np.ndarray] = {
        "edges": g.edges,
        "version": np.array([SCHEMA_VERSION]),
    }
    # Most-derived kinds first: CapacitatedBipartiteGraph is a
    # WeightedBipartiteGraph is a BipartiteGraph.
    if isinstance(g, CapacitatedBipartiteGraph):
        payload["kind"] = np.array([_KIND_CAPACITATED])
        payload["shape"] = np.array([g.n_left, g.n_right], dtype=np.int64)
        payload["weights"] = g.weights
        payload["capacities"] = g.capacities
    elif isinstance(g, WeightedBipartiteGraph):
        payload["kind"] = np.array([_KIND_WEIGHTED_BIPARTITE])
        payload["shape"] = np.array([g.n_left, g.n_right], dtype=np.int64)
        payload["weights"] = g.weights
    elif isinstance(g, BipartiteGraph):
        payload["kind"] = np.array([_KIND_BIPARTITE])
        payload["shape"] = np.array([g.n_left, g.n_right], dtype=np.int64)
    elif isinstance(g, WeightedGraph):
        payload["kind"] = np.array([_KIND_WEIGHTED])
        payload["shape"] = np.array([g.n_vertices], dtype=np.int64)
        payload["weights"] = g.weights
    else:
        payload["kind"] = np.array([_KIND_PLAIN])
        payload["shape"] = np.array([g.n_vertices], dtype=np.int64)
    np.savez_compressed(path, **payload)


def load_npz(path: str | Path) -> Graph:
    """Load a graph saved by :func:`save_npz` (any schema version)."""
    with np.load(path) as data:
        kind = int(data["kind"][0])
        edges = data["edges"]
        shape = data["shape"]
        if kind == _KIND_CAPACITATED:
            return CapacitatedBipartiteGraph(
                int(shape[0]), int(shape[1]), edges,
                data["weights"], data["capacities"],
            )
        if kind == _KIND_WEIGHTED_BIPARTITE:
            return WeightedBipartiteGraph(
                int(shape[0]), int(shape[1]), edges, data["weights"]
            )
        if kind == _KIND_BIPARTITE:
            return BipartiteGraph(int(shape[0]), int(shape[1]), edges)
        if kind == _KIND_WEIGHTED:
            return WeightedGraph(int(shape[0]), edges, data["weights"])
        if kind == _KIND_PLAIN:
            return Graph(int(shape[0]), edges)
    raise ValueError(f"unknown graph kind tag {kind}")


def dumps_edgelist(g: Graph) -> str:
    """Human-readable text format: header line then one ``u v`` per edge."""
    buf = io.StringIO()
    if isinstance(g, BipartiteGraph):
        buf.write(f"# bipartite {g.n_left} {g.n_right}\n")
    else:
        buf.write(f"# graph {g.n_vertices}\n")
    for u, v in g.edges.tolist():
        buf.write(f"{u} {v}\n")
    return buf.getvalue()


def loads_edgelist(text: str) -> Graph:
    """Parse the format produced by :func:`dumps_edgelist`."""
    lines = [ln.strip() for ln in text.splitlines() if ln.strip()]
    if not lines or not lines[0].startswith("#"):
        raise ValueError("missing header line")
    header = lines[0][1:].split()
    rows = [tuple(map(int, ln.split())) for ln in lines[1:]]
    edges = np.asarray(rows, dtype=np.int64).reshape(-1, 2)
    if header[0] == "bipartite":
        return BipartiteGraph(int(header[1]), int(header[2]), edges)
    if header[0] == "graph":
        return Graph(int(header[1]), edges)
    raise ValueError(f"unknown header kind {header[0]!r}")
