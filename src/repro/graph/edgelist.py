"""Immutable edge-list graph.

The core data structure of the library.  Design goals, per the HPC guides:

* construction and all bulk operations are vectorized numpy (``argsort``,
  ``bincount``, ``unique``) — no Python loop touches every edge;
* instances are immutable (arrays are set non-writeable) so subgraphs and
  partition views can share memory safely;
* derived structures (degrees, CSR adjacency) are computed lazily and cached.
"""

from __future__ import annotations

from functools import cached_property
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.utils.arrays import dedupe_edges, edge_keys, unique_vertices

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.graph.csr import CSRAdjacency

__all__ = ["Graph"]


class Graph:
    """An undirected simple graph on vertices ``0..n_vertices-1``.

    Parameters
    ----------
    n_vertices:
        Number of vertices.  Isolated vertices are allowed (and common: the
        paper's distributions produce many of them on each machine).
    edges:
        ``(m, 2)`` array-like of endpoints.  Duplicates and self-loops are
        removed; edges are stored in canonical ``u < v`` orientation sorted
        by scalar key, so two graphs with the same edge *set* compare equal.
    validated:
        Internal fast path: when True, ``edges`` is trusted to already be a
        canonical, deduplicated, sorted int64 array.  Used by subgraph views.
    """

    __slots__ = ("_n", "_edges", "__dict__")

    def __init__(
        self,
        n_vertices: int,
        edges: np.ndarray | Sequence[tuple[int, int]] | None = None,
        *,
        validated: bool = False,
    ) -> None:
        if n_vertices < 0:
            raise ValueError(f"n_vertices must be non-negative, got {n_vertices}")
        self._n = int(n_vertices)
        if edges is None:
            arr = np.zeros((0, 2), dtype=np.int64)
        else:
            arr = np.asarray(edges, dtype=np.int64)
            if arr.size == 0:
                arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError(f"edges must have shape (m, 2), got {arr.shape}")
        if not validated:
            if arr.size and (arr.min() < 0 or arr.max() >= self._n):
                raise ValueError(
                    f"edge endpoints must lie in [0, {self._n}), "
                    f"got range [{arr.min()}, {arr.max()}]"
                )
            arr = dedupe_edges(arr, max(self._n, 1))
            if arr.shape[0] > 1:
                keys = arr[:, 0] * np.int64(max(self._n, 1)) + arr[:, 1]
                arr = arr[np.argsort(keys, kind="stable")]
        arr = np.ascontiguousarray(arr)
        arr.setflags(write=False)
        self._edges = arr

    # ------------------------------------------------------------------ #
    # buffer export / view reconstruction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_canonical_edges(cls, n_vertices: int, edges: np.ndarray) -> "Graph":
        """Zero-copy reconstruction around an already-canonical edge array.

        The counterpart of :attr:`edges`: ``Graph.from_canonical_edges(g.n_vertices,
        g.edges)`` equals ``g`` without touching a single edge byte.  Used by
        :mod:`repro.dist.shm` to rebuild piece views over shared-memory
        buffers in worker processes — the array must already be in the
        canonical ``u < v``, key-sorted, deduplicated form this class
        maintains (anything exported via :attr:`edges` qualifies).
        """
        return cls(n_vertices, edges, validated=True)

    @property
    def edge_nbytes(self) -> int:
        """Size of the canonical edge array in bytes (16 per edge)."""
        return int(self._edges.nbytes)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def n_vertices(self) -> int:
        """Number of vertices (including isolated ones)."""
        return self._n

    @property
    def n_edges(self) -> int:
        """Number of (distinct, undirected) edges."""
        return int(self._edges.shape[0])

    @property
    def edges(self) -> np.ndarray:
        """The ``(m, 2)`` canonical edge array (read-only view)."""
        return self._edges

    @cached_property
    def degrees(self) -> np.ndarray:
        """Vertex degrees as an int64 array of length ``n_vertices``."""
        deg = np.bincount(self._edges.ravel(), minlength=self._n)
        deg = deg.astype(np.int64, copy=False)
        deg.setflags(write=False)
        return deg

    @cached_property
    def max_degree(self) -> int:
        return int(self.degrees.max()) if self._n else 0

    @cached_property
    def adjacency(self) -> "CSRAdjacency":
        """CSR adjacency structure (built lazily; see :mod:`repro.graph.csr`)."""
        from repro.graph.csr import CSRAdjacency

        return CSRAdjacency.from_edges(self._n, self._edges)

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbors of ``v`` (read-only int64 array)."""
        return self.adjacency.neighbors(v)

    def has_edge(self, u: int, v: int) -> bool:
        """Membership test via binary search over the sorted key array."""
        if u == v:
            return False
        lo, hi = (u, v) if u < v else (v, u)
        key = np.int64(lo) * np.int64(max(self._n, 1)) + np.int64(hi)
        idx = np.searchsorted(self.edge_key_array, key)
        return bool(idx < self.n_edges and self.edge_key_array[idx] == key)

    @cached_property
    def edge_key_array(self) -> np.ndarray:
        """Sorted scalar keys ``u*n+v`` of the edges, for fast set ops."""
        keys = edge_keys(self._edges, max(self._n, 1)) if self.n_edges else np.zeros(
            0, dtype=np.int64
        )
        keys.setflags(write=False)
        return keys

    @cached_property
    def non_isolated_vertices(self) -> np.ndarray:
        """Vertices with degree ≥ 1, sorted."""
        verts = unique_vertices(self._edges)
        verts.setflags(write=False)
        return verts

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #
    def subgraph_from_mask(self, mask: np.ndarray) -> "Graph":
        """Graph on the same vertex set keeping edges where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n_edges,):
            raise ValueError(
                f"mask must have shape ({self.n_edges},), got {mask.shape}"
            )
        return Graph(self._n, self._edges[mask], validated=True)

    def subgraph_from_indices(self, indices: np.ndarray) -> "Graph":
        """Graph keeping the edges at the given row ``indices``.

        Indices need not be sorted; the edge order is re-canonicalized.
        """
        idx = np.asarray(indices, dtype=np.int64)
        sub = self._edges[np.sort(idx)]
        return Graph(self._n, sub, validated=True)

    def without_vertices(self, vertices: np.ndarray | Iterable[int]) -> "Graph":
        """Graph with all edges incident on ``vertices`` removed.

        Vertex set (and numbering) is preserved — this is the "peel" step of
        the vertex-cover coreset, which repeatedly deletes high-degree
        vertices but never renumbers.
        """
        drop = np.zeros(self._n, dtype=bool)
        vs = np.asarray(list(vertices) if not isinstance(vertices, np.ndarray) else vertices,
                        dtype=np.int64)
        if vs.size:
            if vs.min() < 0 or vs.max() >= self._n:
                raise ValueError("vertex id out of range")
            drop[vs] = True
        keep = ~(drop[self._edges[:, 0]] | drop[self._edges[:, 1]])
        return self.subgraph_from_mask(keep)

    def union(self, *others: "Graph") -> "Graph":
        """Union of edge sets; all graphs must share the same vertex count."""
        for g in others:
            if g.n_vertices != self._n:
                raise ValueError(
                    f"cannot union graphs on {self._n} and {g.n_vertices} vertices"
                )
        if not others:
            return self
        stacked = np.vstack([self._edges] + [g.edges for g in others])
        return Graph(self._n, stacked)

    def relabeled(self, mapping: np.ndarray, n_new: int | None = None) -> "Graph":
        """Apply the vertex relabeling ``v -> mapping[v]``.

        Used by the Remark-5.8 vertex-grouping protocol, where ``mapping``
        sends each vertex to its super-vertex.  Self-loops created by the
        contraction are dropped and parallel edges merged (the coreset for
        multigraphs only cares about the support).
        """
        mapping = np.asarray(mapping, dtype=np.int64)
        if mapping.shape != (self._n,):
            raise ValueError(f"mapping must have shape ({self._n},)")
        n_new = int(mapping.max()) + 1 if n_new is None else int(n_new)
        return Graph(n_new, mapping[self._edges])

    # ------------------------------------------------------------------ #
    # dunder / misc
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and np.array_equal(self._edges, other._edges)

    def __hash__(self) -> int:
        return hash((self._n, self._edges.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(n_vertices={self._n}, n_edges={self.n_edges})"

    def copy_with_edges(self, edges: np.ndarray) -> "Graph":
        """New graph on the same vertex set with the given raw edge list."""
        return Graph(self._n, edges)
