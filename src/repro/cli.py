"""Command-line interface.

    python -m repro quickstart [--n 4000 --k 8 --seed 0]
    python -m repro solve --list
    python -m repro solve planted:n=4000 --problem matching --solver coreset \
        --k 8 --executor processes
    python -m repro solve graph.npz --solver vertex_cover.coreset --k 8 --json -
    python -m repro solve workload:gmission --solver matching.maximum
    python -m repro workloads --list
    python -m repro workloads --info ba_adwords --json
    python -m repro workloads --fetch gmission
    python -m repro experiment e1 [--trials 3]
    python -m repro experiment e1 --set n_values=2000,4000 --json out.json
    python -m repro experiment e21 --executor processes --workers 8
    python -m repro experiment e1 --archive            # JSON run artifact
    python -m repro list-experiments
    python -m repro sweep e1 e8 --set n_trials=1 --set e1.k_values=4,8 \
        --seeds 0,1 --dir benchmarks/sweeps/demo --executor processes
    python -m repro bench [--quick --check --out BENCH_substrate.json]
    python -m repro report [--results benchmarks/results -o report.md]
    python -m repro report --diff OLD.json NEW.json
    python -m repro report --trend benchmarks/sweeps/demo --check
    python -m repro serve --port 8080 --graph demo=planted:n=4000
    python -m repro worker --connect HOST:PORT [--tag NAME]

The CLI is a thin shell over the declarative experiment registry
(:mod:`repro.experiments.registry`) so that every table a benchmark can
produce is also reachable without pytest — with any grid parameter
overridable from the command line (``--set KEY=VALUE``, repeatable; values
are coerced to the type of the parameter's default, comma-separating
tuples) and machine-readable output (``--json PATH`` writes a JSON
document, ``--json -`` prints it to stdout instead of the text table).

``--executor`` / ``--workers`` select the execution backend (`serial`,
`threads`, `processes`, `remote`); they work by setting ``REPRO_EXECUTOR`` /
``REPRO_WORKERS`` for the run, which is where the trial harness
(``run_trials``) and the distributed engines (``run_simultaneous``,
``MapReduceSimulator``) resolve their defaults, so every experiment picks
them up without per-table plumbing.  Outputs are bit-identical across
backends for the same seed (docs/PARALLELISM.md); the registry's picklable
trials are what let ``processes`` fan out whole trials, not just machines.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Randomized composable coresets for matching and "
                    "vertex cover (Assadi–Khanna SPAA'17 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    q = sub.add_parser("quickstart", help="run the Theorem 1 demo pipeline")
    q.add_argument("--n", type=int, default=4000, help="vertices per side ×2")
    q.add_argument("--k", type=int, default=8, help="number of machines")
    q.add_argument("--seed", type=int, default=0)
    _add_executor_flags(q)

    s = sub.add_parser(
        "solve",
        help="run one registered solver on a graph (repro.solve facade)",
        description="Run one capability-tagged solver from the "
                    "repro.solve registry on a graph file (.npz or "
                    "edge-list text) or a generator spec like "
                    "planted:n=2000 (see docs/SOLVER_API.md).",
    )
    s.add_argument("graph", nargs="?", default=None, metavar="GRAPH",
                   help="graph file (.npz / edge-list text), generator "
                        "spec name[:k=v,...] — planted, gnp, bipartite, "
                        "skewed, weighted — or a registry workload "
                        "workload:NAME[:k=v,...] (see repro workloads "
                        "--list)")
    s.add_argument("--list", action="store_true", dest="list_solvers",
                   help="list registered solvers with their capability "
                        "metadata and exit")
    s.add_argument("--problem", choices=["matching", "vertex_cover"],
                   default=None,
                   help="problem to solve (disambiguates short --solver "
                        "names; filters --list)")
    s.add_argument("--solver", default=None,
                   help="registered solver name, full (matching.coreset) "
                        "or short within --problem (coreset)")
    s.add_argument("--k", type=int, default=None,
                   help="machine count for coreset/mapreduce solvers")
    s.add_argument("--seed", type=int, default=0,
                   help="root seed: graph generation and the solver run "
                        "derive independent streams from it")
    s.add_argument("--param", action="append", default=[], dest="params",
                   metavar="KEY=VALUE",
                   help="solver parameter override (repeatable), e.g. "
                        "--param alpha=8")
    s.add_argument("--transfer", choices=["pickle", "shared"], default=None,
                   help="piece-transfer mode for coreset solvers "
                        "(default: $REPRO_TRANSFER or pickle)")
    s.add_argument("--certificate", action="store_true",
                   help="include the full certificate in --json output")
    s.add_argument("--json", default=None, dest="json_path", metavar="PATH",
                   help="write the SolveResult as JSON to PATH ('-' prints "
                        "JSON to stdout)")
    _add_executor_flags(s)

    wl = sub.add_parser(
        "workloads",
        help="list, inspect, or prefetch registered workload families "
             "(repro.workloads)",
        description="The workload registry: synthetic families "
                    "(preferential attachment, capacitated AdWords, "
                    "power-law, clustered) and dataset-backed loaders "
                    "(gmission, movielens) with bundled offline fixtures. "
                    "Any workload is usable as a repro solve graph via "
                    "workload:NAME[:k=v,...].  See docs/WORKLOADS.md.",
    )
    wl.add_argument("--list", action="store_true", dest="list_workloads",
                    help="table of registered workloads with kind, flags, "
                         "and parameter defaults")
    wl.add_argument("--info", default=None, metavar="NAME",
                    help="full metadata for one workload")
    wl.add_argument("--fetch", default=None, metavar="NAME",
                    help="materialize one workload at default parameters "
                         "into the cache (~/.cache/repro or "
                         "$REPRO_CACHE_DIR) as a .npz artifact")
    wl.add_argument("--seed", type=int, default=0,
                    help="build seed for --fetch (default 0)")
    wl.add_argument("--force", action="store_true",
                    help="with --fetch: rebuild even if the artifact "
                         "exists")
    wl.add_argument("--json", action="store_true", dest="as_json",
                    help="emit --list/--info output as JSON")

    e = sub.add_parser("experiment", help="run one experiment table")
    e.add_argument("id", help="experiment id, e.g. e1, e7, e21")
    e.add_argument("--trials", type=int, default=None,
                   help="override the number of trials")
    e.add_argument("--seed", type=int, default=None,
                   help="override the experiment seed")
    e.add_argument("--set", action="append", default=[], dest="overrides",
                   metavar="KEY=VALUE",
                   help="override a grid parameter (repeatable); values are "
                        "coerced to the default's type, tuples are "
                        "comma-separated, e.g. --set n_values=2000,4000")
    e.add_argument("--json", default=None, dest="json_path", metavar="PATH",
                   help="write the table as JSON to PATH ('-' prints JSON "
                        "to stdout instead of the text table)")
    e.add_argument("--archive", nargs="?", const="benchmarks/results",
                   default=None, metavar="DIR",
                   help="persist the run as a schema-versioned JSON "
                        "artifact under DIR (default benchmarks/results) "
                        "for repro report --diff")
    _add_executor_flags(e)

    sub.add_parser("list-experiments", help="list available experiment ids")

    sw = sub.add_parser(
        "sweep",
        help="cross-product --set axes into a resumable grid of archived "
             "experiment runs (repro.sweep)",
        description="Plan and execute an experiment grid: every "
                    "comma-separated value of a --set axis becomes its own "
                    "cell, cells are archived as content-addressed run "
                    "artifacts under DIR/cells plus a manifest at "
                    "DIR/manifest.json, and a re-invocation skips every "
                    "cell whose artifact already exists.  A failing cell "
                    "is recorded and the sweep continues (exit 1 at the "
                    "end).  See docs/SWEEPS.md.",
    )
    sw.add_argument("ids", nargs="+", metavar="EXPERIMENT",
                    help="experiment id(s) to sweep, e.g. e1 e8")
    sw.add_argument("--set", action="append", default=[], dest="overrides",
                    metavar="[EXP.]KEY=V1,V2,...",
                    help="one grid axis (repeatable): each comma-separated "
                         "value is its own cell; EXP. scopes the axis to "
                         "one experiment of a multi-experiment sweep; ';' "
                         "builds tuple values (n_values=600;1200)")
    sw.add_argument("--seeds", default=None, metavar="S1,S2,...",
                    help="comma-separated root seeds — one more axis "
                         "(default: each spec's registered seed)")
    sw.add_argument("--dir", default="benchmarks/sweeps", dest="directory",
                    help="sweep directory: cell artifacts under DIR/cells, "
                         "manifest at DIR/manifest.json "
                         "(default %(default)s)")
    sw.add_argument("--force", action="store_true",
                    help="re-execute cells whose artifact already exists")
    sw.add_argument("--retry-failed", type=int, default=0, metavar="N",
                    dest="retry_failed",
                    help="re-run a failing cell up to N extra times (e.g. "
                         "a transiently broken worker pool) before "
                         "recording status=failed; the manifest records "
                         "each cell's attempt count (default 0)")
    sw.add_argument("--dry-run", action="store_true",
                    help="print the planned cells and exit without "
                         "executing")
    _add_executor_flags(sw)

    b = sub.add_parser(
        "bench",
        help="time the executor substrate and write BENCH_substrate.json",
    )
    # One source of truth for the flags: the bench module declares them for
    # this subcommand and for its standalone entry point alike.
    from repro.experiments.bench import add_bench_arguments

    add_bench_arguments(b)

    r = sub.add_parser("report", help="stitch archived benchmark tables "
                                      "into one markdown report, diff two "
                                      "archived run artifacts, or render "
                                      "cross-commit trends")
    r.add_argument("--results", default="benchmarks/results",
                   help="directory of archived tables")
    r.add_argument("-o", "--output", default=None,
                   help="write the report here (default: stdout)")
    r.add_argument("--diff", nargs=2, default=None,
                   metavar=("OLD", "NEW"),
                   help="diff two JSON run artifacts (written by "
                        "`repro experiment ... --archive`) instead of "
                        "rendering the report")
    r.add_argument("--trend", default=None, metavar="DIR",
                   help="build per-(experiment, metric, commit) series "
                        "from every run artifact and BENCH_*.json under "
                        "DIR (recursive) and render the trajectory "
                        "instead of the report (docs/SWEEPS.md)")
    r.add_argument("--check", action="store_true",
                   help="with --trend: exit 1 when the newest commit "
                        "regresses any perf or quality metric beyond "
                        "tolerance")
    r.add_argument("--perf-tol", type=float, default=None, metavar="FRAC",
                   help="perf tolerance: flag wall-clock metrics more than "
                        "this fraction slower than the previous commit "
                        "(default 0.20)")
    r.add_argument("--quality-tol", type=float, default=None, metavar="FRAC",
                   help="quality tolerance: flag approximation ratios more "
                        "than this fraction worse than the previous commit "
                        "(default 0.05)")

    v = sub.add_parser(
        "serve",
        help="run the matching-as-a-service HTTP server (repro.serve)",
        description="Serve the solver registry over HTTP: graphs load "
                    "once and stay pinned, a persistent executor pool "
                    "stays warm, concurrent POST /solve requests "
                    "micro-batch into single barriers, and solvers "
                    "resolve by capability (problem/model/guarantee). "
                    "See docs/SERVING.md.",
    )
    v.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    v.add_argument("--port", type=int, default=8080,
                   help="bind port (default 8080; 0 picks a free port)")
    v.add_argument("--graph", action="append", default=[], dest="graphs",
                   metavar="ID=SPEC",
                   help="preload a graph under ID from a file or generator "
                        "spec (repeatable), e.g. --graph "
                        "demo=planted:n=4000; more can be added at "
                        "runtime via POST /graphs")
    v.add_argument("--seed", type=int, default=0,
                   help="generation seed for preloaded generator specs")
    v.add_argument("--batch-window-ms", type=float, default=5.0,
                   help="micro-batch window: concurrent requests for one "
                        "graph arriving within this window share one "
                        "executor barrier (default 5)")
    v.add_argument("--max-batch", type=int, default=32,
                   help="flush a batch early at this many requests "
                        "(default 32)")
    v.add_argument("--pin", choices=["auto", "always", "never"],
                   default="auto",
                   help="shared-memory graph pinning: auto pins exactly "
                        "when the pool is a process pool")
    v.add_argument("--max-inflight", type=int, default=64,
                   help="global in-flight request cap; excess requests "
                        "get 429 overloaded + Retry-After (default 64)")
    v.add_argument("--max-inflight-per-graph", type=int, default=0,
                   help="per-graph in-flight cap (0 disables, the "
                        "default)")
    v.add_argument("--max-queue", type=int, default=256,
                   help="bound on queued (not yet dispatched) batch "
                        "entries; excess requests get 429 (default 256)")
    v.add_argument("--default-deadline-ms", type=float, default=None,
                   help="deadline budget for requests that don't send "
                        "deadline_ms (default: none — such requests run "
                        "unbounded)")
    v.add_argument("--max-deadline-ms", type=float, default=0.0,
                   help="cap on client-supplied deadline_ms (0 = uncapped, "
                        "the default)")
    v.add_argument("--breaker-threshold", type=int, default=3,
                   help="consecutive worker-pool breaks that open the "
                        "circuit breaker (default 3; below it each break "
                        "re-warms immediately)")
    v.add_argument("--breaker-backoff-ms", type=float, default=500.0,
                   help="initial breaker backoff before a half-open "
                        "probe; doubles per reopen up to 30000 ms "
                        "(default 500)")
    v.add_argument("--step-down-after", type=int, default=2,
                   help="consecutive breaker openings before the backend "
                        "steps down remote→processes→serial (0 disables; "
                        "default 2)")
    _add_executor_flags(v)

    w = sub.add_parser(
        "worker",
        help="join a remote-executor coordinator as a worker process",
        description="Connect to a RemoteExecutor coordinator (a run "
                    "started with --executor remote) and execute tasks "
                    "until it shuts down.  Run one per core, on this "
                    "host or any host that can reach the coordinator's "
                    "bind address ($REPRO_REMOTE_BIND).",
    )
    w.add_argument("--connect", required=True, metavar="HOST:PORT",
                   help="the coordinator's address")
    w.add_argument("--tag", default=None,
                   help="optional label reported in the hello frame "
                        "(useful to tell hosts apart in diagnostics)")

    return parser


def _add_executor_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--executor", choices=["serial", "threads", "processes", "remote"],
        default=None,
        help="execution backend for trial fan-out and the distributed "
             "engines (default: $REPRO_EXECUTOR or serial); outputs are "
             "bit-identical across backends for the same seed",
    )
    sub.add_argument(
        "--workers", type=int, default=None,
        help="worker count for threads/processes/remote "
             "(default: $REPRO_WORKERS or the cpu count)",
    )


def _apply_executor_flags(args: argparse.Namespace) -> None:
    """Export the flags as the env defaults the engines resolve."""
    from repro.dist.executor import EXECUTOR_ENV, WORKERS_ENV, validate_workers

    if args.executor is not None:
        os.environ[EXECUTOR_ENV] = args.executor
    if args.workers is not None:
        try:
            validate_workers(args.workers)
        except ValueError as exc:
            raise SystemExit(f"--workers: {exc}")
        os.environ[WORKERS_ENV] = str(args.workers)


def _cmd_quickstart(args: argparse.Namespace) -> int:
    from repro import quickstart_matching

    _apply_executor_flags(args)
    out = quickstart_matching(n=args.n, k=args.k, seed=args.seed,
                              executor=args.executor)
    for key, value in out.items():
        print(f"{key:>17}: {value}")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.solve import (
        RunContext,
        SolverCapabilityError,
        UnknownSolverError,
        get_solver,
        load_graph,
        solve,
        solvers_for,
    )
    from repro.solve.graphs import parse_scalar
    from repro.utils.rng import spawn_seeds

    if args.list_solvers:
        specs = solvers_for(problem=args.problem)
        for spec in specs:
            flags = []
            if spec.bipartite_only:
                flags.append("bipartite-only")
            if spec.weighted:
                flags.append("weighted")
            if spec.capacitated:
                flags.append("capacitated")
            if spec.uses_k:
                flags.append("uses-k")
            if spec.baseline:
                flags.append("baseline")
            flag_text = f" [{', '.join(flags)}]" if flags else ""
            print(f"{spec.name:32s} {spec.problem:12s} {spec.model:10s} "
                  f"{spec.guarantee}{flag_text}")
            print(f"{'':32s} {spec.description}")
        print(f"{len(specs)} solvers registered")
        return 0

    if args.graph is None or args.solver is None:
        print("solve: GRAPH and --solver are required (or use --list)",
              file=sys.stderr)
        return 2

    name = args.solver
    if "." not in name and args.problem is not None:
        name = f"{args.problem}.{name}"
    try:
        spec = get_solver(name)
    except UnknownSolverError as exc:
        print(f"solve: {exc}", file=sys.stderr)
        return 2
    if args.problem is not None and spec.problem != args.problem:
        print(f"solve: solver {spec.name!r} solves {spec.problem}, "
              f"not {args.problem}", file=sys.stderr)
        return 2

    params = {}
    for item in args.params:
        key, sep, text = item.partition("=")
        key = key.strip()
        if not sep or not key:
            print(f"--param expects KEY=VALUE, got {item!r}", file=sys.stderr)
            return 2
        params[key] = parse_scalar(text.strip())

    _apply_executor_flags(args)
    # One clean exit path for every bad input — a negative seed, an
    # out-of-range --k, a bad graph spec, or a capability violation all
    # print one line and exit 2, never a traceback.
    try:
        graph_seed, solve_seed = spawn_seeds(args.seed, 2)
        graph = load_graph(args.graph, rng=graph_seed)
        ctx = RunContext(seed=solve_seed, k=args.k, executor=args.executor,
                         workers=args.workers, transfer=args.transfer)
        result = solve(graph, spec.name, ctx, **params)
    except (SolverCapabilityError, ValueError) as exc:
        print(f"solve: {exc}", file=sys.stderr)
        return 2

    doc = result.to_dict(include_certificate=args.certificate)
    doc["graph"] = {
        "source": args.graph,
        "n_vertices": graph.n_vertices,
        "n_edges": graph.n_edges,
        "kind": type(graph).__name__,
    }
    doc["solver_meta"] = spec.capabilities()
    doc["seed"] = args.seed

    if args.json_path == "-":
        import json

        print(json.dumps(doc, indent=2))
        return 0
    if args.json_path is not None:
        import json

        Path(args.json_path).write_text(json.dumps(doc, indent=2) + "\n")
    print(f"  solver: {spec.name} ({spec.model}, {spec.guarantee})")
    print(f"   graph: {args.graph} — n={graph.n_vertices} "
          f"m={graph.n_edges} ({type(graph).__name__})")
    print(f"   value: {result.value:g}")
    print(f"    size: {result.size}")
    print(f"verified: {result.verified}")
    print(f"    wall: {result.wall_time_s:.4f}s")
    for key in sorted(result.stats):
        print(f"   stats: {key} = {result.stats[key]}")
    if args.json_path is not None:
        print(f"[wrote JSON: {args.json_path}]")
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    import json

    from repro.workloads import (
        UnknownWorkloadError,
        all_workloads,
        fetch_workload,
        get_workload,
    )

    if args.info is not None:
        try:
            spec = get_workload(args.info)
        except UnknownWorkloadError as exc:
            print(f"workloads: {exc}", file=sys.stderr)
            return 2
        info = spec.info()
        if args.as_json:
            print(json.dumps(info, indent=2))
            return 0
        for key in ("name", "kind", "weighted", "capacitated", "source"):
            print(f"{key:>12}: {info[key]}")
        print(f"{'params':>12}: " + (", ".join(
            f"{k}={v!r}" for k, v in info["params"].items()) or "(none)"))
        print(f"{'description':>12}: {info['description']}")
        print(f"{'spec':>12}: workload:{spec.name}" + (
            ":" + ",".join(f"{k}={v}" for k, v in info["params"].items()
                           if v is not None)
            if any(v is not None for v in info["params"].values()) else ""))
        return 0

    if args.fetch is not None:
        try:
            path = fetch_workload(args.fetch, seed=args.seed,
                                  force=args.force)
        except UnknownWorkloadError as exc:
            print(f"workloads: {exc}", file=sys.stderr)
            return 2
        print(f"[cached: {path}]")
        return 0

    # --list is the default action
    specs = all_workloads()
    if args.as_json:
        print(json.dumps([s.info() for s in specs], indent=2))
        return 0
    print(f"{'name':<12} {'kind':<10} {'flags':<20} params")
    print(f"{'-' * 12} {'-' * 10} {'-' * 20} {'-' * 30}")
    for spec in specs:
        flags = [f for f, on in (("weighted", spec.weighted),
                                 ("capacitated", spec.capacitated)) if on]
        params = ", ".join(f"{k}={v}" for k, v in spec.params.items())
        print(f"{spec.name:<12} {spec.kind:<10} "
              f"{','.join(flags) or '-':<20} {params or '-'}")
        print(f"{'':<12} {spec.description}")
    print(f"{len(specs)} workloads registered "
          f"(use as: repro solve workload:NAME[:k=v,...])")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.registry import (
        UnknownExperimentError,
        UnknownParameterError,
        get_experiment,
    )

    _apply_executor_flags(args)
    try:
        spec = get_experiment(args.id)
    except UnknownExperimentError as exc:
        print(exc, file=sys.stderr)
        return 2

    overrides = {}
    for item in args.overrides:
        key, sep, text = item.partition("=")
        key = key.strip()
        if not sep or not key:
            print(f"--set expects KEY=VALUE, got {item!r}", file=sys.stderr)
            return 2
        try:
            overrides[key] = spec.coerce(key, text)
        except (UnknownParameterError, ValueError) as exc:
            print(f"--set {item!r}: {exc}", file=sys.stderr)
            return 2
    if args.trials is not None:
        overrides["n_trials"] = args.trials

    try:
        table = spec.run(seed=args.seed, archive_dir=args.archive,
                         **overrides)
    except ValueError as exc:
        # Covers UnknownParameterError plus values that pass coercion but
        # fail at run time (e.g. an unknown E15 variant, n_trials=0) —
        # bad input exits 2 with one line, never a traceback.
        print(f"experiment {spec.id}: {exc}", file=sys.stderr)
        return 2

    archived = getattr(table, "artifact_path", None)
    if args.json_path == "-":
        print(table.to_json())
        if archived:
            print(f"[archived run: {archived}]", file=sys.stderr)
        return 0
    if args.json_path is not None:
        Path(args.json_path).write_text(table.to_json() + "\n")
        print(table.format())
        print(f"[wrote JSON: {args.json_path}]")
    else:
        print(table.format())
    if archived:
        print(f"[archived run: {archived}]")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sweep import GridError, plan_grid, run_sweep

    _apply_executor_flags(args)
    seeds = None
    if args.seeds is not None:
        try:
            seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
        except ValueError:
            print(f"--seeds expects comma-separated integers, got "
                  f"{args.seeds!r}", file=sys.stderr)
            return 2
        if not seeds:
            print(f"--seeds lists no seeds: {args.seeds!r}", file=sys.stderr)
            return 2
    try:
        cells = plan_grid(args.ids, args.overrides, seeds)
    except GridError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2

    if args.dry_run:
        for cell in cells:
            print(f"  plan  {cell.describe()}")
        print(f"{len(cells)} cells planned (dry run, nothing executed)")
        return 0

    if args.retry_failed < 0:
        print(f"--retry-failed must be >= 0, got {args.retry_failed}",
              file=sys.stderr)
        return 2
    result = run_sweep(
        cells, args.directory,
        executor=args.executor,
        force=args.force,
        retry_failed=args.retry_failed,
        grid_args={
            "experiments": [e.strip().lower() for e in args.ids],
            "set": list(args.overrides),
            "seeds": seeds,
        },
    )
    by_id = {r["cell_id"]: r for r in result.executed + result.skipped}
    for cell in cells:
        record = by_id.get(cell.cell_id)
        if record is None:  # a duplicate cell collapsed into its twin
            continue
        status = record["status"]
        line = (f"  {status:<7s} {record['wall_time_s']:8.2f}s  "
                f"{cell.describe()}")
        if status == "failed":
            line += f"\n          {record['error']}"
        print(line)
    print(result.summary())
    print(f"[manifest: {result.manifest_path}]")
    return result.exit_code


def _cmd_list(args: argparse.Namespace) -> int:
    del args
    from repro.experiments.registry import all_experiments

    for spec in all_experiments():
        print(f"{spec.id:>4}  {spec.title} — {spec.description}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.bench import run_from_args

    try:
        return run_from_args(args)
    except ValueError as exc:  # e.g. --workers 0
        print(f"bench: {exc}", file=sys.stderr)
        return 2


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServeConfig, serve_main

    preload = []
    for item in args.graphs:
        graph_id, sep, source = item.partition("=")
        graph_id = graph_id.strip()
        if not sep or not graph_id or not source.strip():
            print(f"--graph expects ID=SPEC, got {item!r}", file=sys.stderr)
            return 2
        preload.append((graph_id, source.strip()))
    config = ServeConfig(
        host=args.host,
        port=args.port,
        executor=args.executor,
        workers=args.workers,
        batch_window_ms=args.batch_window_ms,
        max_batch=args.max_batch,
        pin=args.pin,
        preload=tuple(preload),
        seed=args.seed,
        max_inflight=args.max_inflight,
        max_inflight_per_graph=args.max_inflight_per_graph,
        max_queue=args.max_queue,
        default_deadline_ms=args.default_deadline_ms,
        max_deadline_ms=args.max_deadline_ms,
        breaker_threshold=args.breaker_threshold,
        breaker_backoff_ms=args.breaker_backoff_ms,
        step_down_after=args.step_down_after,
    )
    try:
        return serve_main(config)
    except (ValueError, OSError) as exc:  # bad flag combo or bind failure
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 130


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.dist.remote import worker_main

    try:
        return worker_main(args.connect, tag=args.tag)
    except ValueError as exc:  # malformed --connect address
        print(f"worker: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 130


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.artifacts import ArtifactError
    from repro.experiments.report import (
        collect_artifacts,
        collect_results,
        render_diff,
        render_report,
    )

    if args.diff is not None:
        old_path, new_path = args.diff
        try:
            text = render_diff(old_path, new_path)
        except ArtifactError as exc:
            print(f"--diff: {exc}", file=sys.stderr)
            return 2
        if args.output:
            Path(args.output).write_text(text + "\n")
            print(f"wrote {args.output}")
        else:
            print(text)
        return 0

    if args.trend is not None:
        import dataclasses

        from repro.sweep.trend import (
            TrendThresholds,
            build_series,
            collect_trend_docs,
            evaluate_trends,
            render_trend,
        )

        thresholds = TrendThresholds()
        tol_overrides = {
            key: value for key, value in
            (("perf_tol", args.perf_tol), ("quality_tol", args.quality_tol))
            if value is not None
        }
        if tol_overrides:
            thresholds = dataclasses.replace(thresholds, **tol_overrides)
        try:
            docs = collect_trend_docs(args.trend)
        except FileNotFoundError as exc:
            print(f"--trend: {exc}", file=sys.stderr)
            return 2
        series = build_series(docs)
        flags = evaluate_trends(series, thresholds)
        text = render_trend(series, flags, thresholds)
        if args.output:
            Path(args.output).write_text(text + "\n")
            print(f"wrote {args.output} ({len(series)} series, "
                  f"{len(flags)} flagged)")
        else:
            print(text)
        return 1 if (args.check and flags) else 0

    results = collect_results(args.results)
    artifacts = collect_artifacts(args.results)
    text = render_report(results, artifacts=artifacts)
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote {args.output} ({len(results)} tables, "
              f"{len(artifacts)} run artifacts)")
    else:
        print(text)
    return 0


_COMMANDS = {
    "quickstart": _cmd_quickstart,
    "solve": _cmd_solve,
    "workloads": _cmd_workloads,
    "experiment": _cmd_experiment,
    "list-experiments": _cmd_list,
    "sweep": _cmd_sweep,
    "bench": _cmd_bench,
    "report": _cmd_report,
    "serve": _cmd_serve,
    "worker": _cmd_worker,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:  # stdout closed early (e.g. piped to `head`)
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
