"""Command-line interface.

    python -m repro quickstart [--n 4000 --k 8 --seed 0]
    python -m repro experiment e1 [--trials 3]
    python -m repro experiment e21 --executor processes --workers 8
    python -m repro list-experiments
    python -m repro report [--results benchmarks/results -o report.md]

The CLI is a thin shell over :mod:`repro.experiments` so that every table a
benchmark can produce is also reachable without pytest — useful for quick
parameter exploration on the command line.

``--executor`` / ``--workers`` select the execution backend for the
distributed engines (`serial`, `threads`, `processes`); they work by
setting ``REPRO_EXECUTOR`` / ``REPRO_WORKERS`` for the run, which is where
``run_simultaneous`` and ``MapReduceSimulator`` resolve their defaults, so
every experiment picks them up without per-table plumbing.  Outputs are
bit-identical across backends for the same seed (docs/PARALLELISM.md).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Sequence

__all__ = ["main", "build_parser"]


def _experiment_registry() -> dict[str, Callable]:
    from repro.experiments import tables

    registry = {}
    for name in tables.__all__:
        key = name.split("_")[0]  # "e1_matching_coreset" -> "e1"
        registry[key] = getattr(tables, name)
    return registry


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Randomized composable coresets for matching and "
                    "vertex cover (Assadi–Khanna SPAA'17 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    q = sub.add_parser("quickstart", help="run the Theorem 1 demo pipeline")
    q.add_argument("--n", type=int, default=4000, help="vertices per side ×2")
    q.add_argument("--k", type=int, default=8, help="number of machines")
    q.add_argument("--seed", type=int, default=0)
    _add_executor_flags(q)

    e = sub.add_parser("experiment", help="run one experiment table")
    e.add_argument("id", help="experiment id, e.g. e1, e7, e21")
    e.add_argument("--trials", type=int, default=None,
                   help="override the number of trials")
    e.add_argument("--seed", type=int, default=None,
                   help="override the experiment seed")
    _add_executor_flags(e)

    sub.add_parser("list-experiments", help="list available experiment ids")

    r = sub.add_parser("report", help="stitch archived benchmark tables "
                                      "into one markdown report")
    r.add_argument("--results", default="benchmarks/results",
                   help="directory of archived tables")
    r.add_argument("-o", "--output", default=None,
                   help="write the report here (default: stdout)")

    return parser


def _add_executor_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--executor", choices=["serial", "threads", "processes"],
        default=None,
        help="execution backend for the distributed engines "
             "(default: $REPRO_EXECUTOR or serial); outputs are "
             "bit-identical across backends for the same seed",
    )
    sub.add_argument(
        "--workers", type=int, default=None,
        help="worker count for threads/processes "
             "(default: $REPRO_WORKERS or the cpu count)",
    )


def _apply_executor_flags(args: argparse.Namespace) -> None:
    """Export the flags as the env defaults the engines resolve."""
    from repro.dist.executor import EXECUTOR_ENV, WORKERS_ENV

    if args.executor is not None:
        os.environ[EXECUTOR_ENV] = args.executor
    if args.workers is not None:
        if args.workers < 1:
            raise SystemExit(f"--workers must be >= 1, got {args.workers}")
        os.environ[WORKERS_ENV] = str(args.workers)


def _cmd_quickstart(args: argparse.Namespace) -> int:
    from repro import quickstart_matching

    _apply_executor_flags(args)
    out = quickstart_matching(n=args.n, k=args.k, seed=args.seed,
                              executor=args.executor)
    for key, value in out.items():
        print(f"{key:>17}: {value}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    _apply_executor_flags(args)
    registry = _experiment_registry()
    key = args.id.lower()
    if key not in registry:
        print(f"unknown experiment {args.id!r}; available: "
              f"{', '.join(sorted(registry, key=_exp_order))}",
              file=sys.stderr)
        return 2
    kwargs = {}
    if args.trials is not None:
        kwargs["n_trials"] = args.trials
    if args.seed is not None:
        kwargs["seed"] = args.seed
    table = registry[key](**kwargs)
    print(table.format())
    return 0


def _exp_order(key: str) -> int:
    try:
        return int(key.lstrip("e"))
    except ValueError:  # pragma: no cover - defensive
        return 10**6


def _cmd_list(args: argparse.Namespace) -> int:
    del args
    from repro.experiments import tables

    registry = _experiment_registry()
    for key in sorted(registry, key=_exp_order):
        fn = registry[key]
        doc = (fn.__doc__ or "").strip().splitlines()[0]
        print(f"{key:>4}  {doc}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import collect_results, render_report

    results = collect_results(args.results)
    text = render_report(results)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text)
        print(f"wrote {args.output} ({len(results)} tables)")
    else:
        print(text)
    return 0


_COMMANDS = {
    "quickstart": _cmd_quickstart,
    "experiment": _cmd_experiment,
    "list-experiments": _cmd_list,
    "report": _cmd_report,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:  # stdout closed early (e.g. piped to `head`)
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
