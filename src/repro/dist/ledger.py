"""Per-player communication accounting in bits.

The paper's upper bounds (Õ(nk) total for the Theorem 1/2 coresets) and
lower bounds (Ω(nk/α²) for matching, Ω(nk/α) for vertex cover) are both
statements about *bits sent per player*, so the ledger charges every
:class:`~repro.dist.message.Message` to its sender under the encoding model
of :mod:`repro.utils.bits` and exposes the totals the experiments plot:
total bits, the max over players (the per-machine budget the theorems
constrain), and raw edge/vertex counts (the "coreset size" the paper states
its results in).
"""

from __future__ import annotations

import numpy as np

from repro.dist.message import Message

__all__ = ["CommunicationLedger"]


class CommunicationLedger:
    """Accumulates the communication cost of one protocol execution.

    Parameters
    ----------
    n_vertices:
        Vertex count of the underlying graph; fixes the bit price of an
        edge (``2·ceil(log2 n)``) and of a vertex id (``ceil(log2 n)``).
    k:
        Number of players.  Messages from senders outside ``[0, k)`` are
        rejected.
    """

    def __init__(self, n_vertices: int, k: int) -> None:
        if n_vertices < 1:
            raise ValueError(
                f"n_vertices must be at least 1, got {n_vertices}"
            )
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        self.n_vertices = int(n_vertices)
        self.k = int(k)
        self._bits = np.zeros(self.k, dtype=np.int64)
        self._edges = np.zeros(self.k, dtype=np.int64)
        self._fixed = np.zeros(self.k, dtype=np.int64)
        self._n_messages = 0

    # ------------------------------------------------------------------ #
    def record(self, message: Message) -> None:
        """Charge ``message`` to its sender."""
        s = message.sender
        if not 0 <= s < self.k:
            raise ValueError(
                f"message sender {s} out of range [0, {self.k})"
            )
        self._bits[s] += message.bit_size(self.n_vertices)
        self._edges[s] += message.n_edges
        self._fixed[s] += message.n_fixed_vertices
        self._n_messages += 1

    # ------------------------------------------------------------------ #
    @property
    def n_messages(self) -> int:
        """Number of messages recorded so far."""
        return self._n_messages

    def per_player_bits(self) -> np.ndarray:
        """Bits sent by each player, as a length-``k`` int64 array."""
        return self._bits.copy()

    def total_bits(self) -> int:
        """Total bits sent by all players."""
        return int(self._bits.sum())

    def max_player_bits(self) -> int:
        """The largest per-player bit count (0 on an empty ledger)."""
        return int(self._bits.max()) if self.k else 0

    def total_edges(self) -> int:
        """Total number of edges shipped across all messages."""
        return int(self._edges.sum())

    def total_fixed_vertices(self) -> int:
        """Total number of fixed-solution vertex ids shipped."""
        return int(self._fixed.sum())

    def summary(self) -> dict:
        """A flat dict of the headline numbers (for tables and reports)."""
        return {
            "k": self.k,
            "n_vertices": self.n_vertices,
            "n_messages": self._n_messages,
            "total_bits": self.total_bits(),
            "max_player_bits": self.max_player_bits(),
            "mean_player_bits": float(self._bits.mean()) if self.k else 0.0,
            "total_edges": self.total_edges(),
            "total_fixed_vertices": self.total_fixed_vertices(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CommunicationLedger(k={self.k}, n_vertices={self.n_vertices}, "
            f"total_bits={self.total_bits()})"
        )
