"""Pluggable execution backends for the distributed substrate.

The paper's model is *simultaneous*: machines act independently and only a
barrier (the coordinator, or the end of a MapReduce round) joins their
results.  That independence is already real in the code — per-machine
generators are spawned from one ``SeedSequence`` and graph pieces are
immutable views — so the engine can fan the per-machine work out to an
:class:`Executor` without changing a single output bit.  This module
provides the three backends and the resolution logic shared by
:func:`~repro.dist.coordinator.run_simultaneous`,
:class:`~repro.dist.mapreduce.MapReduceSimulator`, and
:func:`~repro.experiments.harness.run_trials`.

The determinism contract (see ``docs/PARALLELISM.md``) is owned by the
*callers*, not the backends: an executor only promises that
:meth:`Executor.map` returns results **in input order**, regardless of
completion order.  Engines submit machines in index order and compose the
returned list positionally, so every backend produces bit-identical results
for the same seed.

Backends
--------
``serial``
    A plain loop in the calling process.  The default; zero overhead and
    no constraints on the task functions.
``threads``
    ``concurrent.futures.ThreadPoolExecutor``.  Shares memory with the
    caller, so closures are fine; pays the GIL, so it only helps when the
    per-machine work releases it (large numpy kernels) or when tasks block.
``processes``
    ``concurrent.futures.ProcessPoolExecutor``.  True parallelism, but
    every task — including the protocol's summarizer or the round's
    route/compute function — must be **picklable**: defined at module
    level, never a closure or a lambda.  Unpicklable tasks raise
    :class:`UnpicklableTaskError`.
``remote``
    :class:`~repro.dist.remote.RemoteExecutor`: a socket coordinator plus
    ``repro worker`` processes (local subprocesses by default, other
    hosts by design), with per-task timeouts, bounded retry, heartbeats,
    and a content-addressed piece cache.  Registered lazily here so this
    module never imports the socket machinery it does not need.

Lifecycle
---------
Executors are **persistent**: the thread/process pool is created lazily on
the first :meth:`Executor.map` call that needs it and *reused* by every
subsequent call until :meth:`Executor.close`.  That is what lets an
r-round MapReduce job or an n-trial sweep pay pool start-up (fork + import)
once instead of once per barrier.  Executors are context managers::

    with ProcessExecutor(max_workers=4) as ex:
        res1 = run_simultaneous(proto, part, rng=2, executor=ex)
        res2 = run_simultaneous(proto, part, rng=3, executor=ex)  # same pool

``close()`` is idempotent; :meth:`Executor.map` after ``close()`` raises
:class:`ExecutorClosedError`.  Engines that *resolve* an executor from a
name or the environment own it and close it when their work completes;
engines handed an :class:`Executor` instance never close it — the caller
controls pool lifetime (ownership rule in ``docs/PARALLELISM.md`` §6).

Usage
-----
Run the Theorem 1 protocol with one process per machine::

    from repro.core.protocols import matching_coreset_protocol
    from repro.dist.coordinator import run_simultaneous
    from repro.graph.generators import planted_matching_gnp
    from repro.graph.partition import random_k_partition

    graph, _ = planted_matching_gnp(2000, 2000, p=3.0 / 4000, rng=0)
    part = random_k_partition(graph, k=8, rng=1)
    res = run_simultaneous(matching_coreset_protocol(), part, rng=2,
                           executor="processes")
    # Bit-identical to executor="serial" with the same seed.

Or pick the backend per environment (the CLI's ``--executor`` flag and the
CI's parallel leg both use this)::

    REPRO_EXECUTOR=processes REPRO_WORKERS=8 python -m pytest tests/ -q
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, List, Optional, Union

__all__ = [
    "EXECUTOR_ENV",
    "WORKERS_ENV",
    "Executor",
    "ExecutorClosedError",
    "ExecutorError",
    "ExecutorSpec",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "UnpicklableTaskError",
    "WorkerPoolBrokenError",
    "available_backends",
    "resolve_executor",
    "validate_workers",
]

#: Environment variable selecting the default backend (``serial`` if unset).
EXECUTOR_ENV = "REPRO_EXECUTOR"
#: Environment variable selecting the default worker count (cpu count if unset).
WORKERS_ENV = "REPRO_WORKERS"


class ExecutorError(RuntimeError):
    """A task could not be executed on the selected backend."""


class ExecutorClosedError(ExecutorError):
    """:meth:`Executor.map` was called on an executor after ``close()``."""


class UnpicklableTaskError(ExecutorError):
    """A task cannot cross a process boundary.

    Raised by the ``processes`` backend with a message naming the offending
    object instead of surfacing as an opaque ``PicklingError`` from inside
    the pool machinery.
    """


class WorkerPoolBrokenError(ExecutorError):
    """A worker process died mid-map (segfault, ``os._exit``, OOM kill).

    The executor discards the broken pool when raising this, so the *next*
    :meth:`Executor.map` call transparently starts a fresh pool — a crash
    costs one barrier, not the whole executor.
    """


class Executor:
    """Maps a function over tasks; results come back in **input order**.

    Subclasses implement :meth:`map`.  The order guarantee is the whole
    API: callers rely on it to compose per-machine results positionally,
    which is what keeps parallel runs bit-identical to serial ones.

    Executors own at most one worker pool, created lazily and reused by
    every ``map`` call until :meth:`close` — the pool lifecycle documented
    in ``docs/PARALLELISM.md`` §6.
    """

    name: str = "abstract"

    def __init__(self) -> None:
        self._closed = False

    # ------------------------------------------------------------------ #
    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> List[Any]:
        """Apply ``fn`` to every task; return results in input order."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def close(self) -> None:
        """Release the worker pool (if any).  Idempotent."""
        self._closed = True

    def __enter__(self) -> "Executor":
        self._ensure_open()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise ExecutorClosedError(
                f"{type(self).__name__} has been closed; create a new "
                f"executor (or use the context-manager form) to run more "
                f"tasks"
            )

    def stats(self) -> dict:
        """Observable backend state, JSON-ready.  The base payload covers
        every backend (``pools_created`` is 0 for poolless ones);
        subclasses with more to say — :class:`~repro.dist.remote.
        RemoteExecutor`'s degradation seam — extend it."""
        return {
            "backend": self.name,
            "closed": self._closed,
            "max_workers": getattr(self, "max_workers", None),
            "pools_created": getattr(self, "pools_created", 0),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialExecutor(Executor):
    """The plain loop: run every task in the calling process, in order.

    There is no pool to release, but ``close()`` still flips the executor
    into the closed state so lifecycle behavior is backend-independent —
    code that works with a closed ``serial`` executor would silently break
    the moment ``$REPRO_EXECUTOR`` selects a pooled backend.
    """

    name = "serial"

    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> List[Any]:
        self._ensure_open()
        return [fn(t) for t in tasks]


class ThreadExecutor(Executor):
    """A ``ThreadPoolExecutor`` backend (shared memory, GIL-bound).

    The pool is created on the first multi-task :meth:`map` and reused by
    every later call until :meth:`close`.

    Parameters
    ----------
    max_workers:
        Thread count; defaults to ``$REPRO_WORKERS`` or the cpu count.
    """

    name = "threads"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__()
        self.max_workers = _default_workers(max_workers)
        self._pool: Optional[ThreadPoolExecutor] = None
        #: How many pools this executor has created over its lifetime.
        #: Stays at 1 across barriers unless a pool was discarded —
        #: the observable half of the persistence contract (§6).
        self.pools_created = 0

    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> List[Any]:
        self._ensure_open()
        tasks = list(tasks)
        if len(tasks) <= 1 and self._pool is None:
            # A single task gains nothing from spinning up a pool.
            return [fn(t) for t in tasks]
        return list(self._ensure_pool().map(fn, tasks))

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
            self.pools_created += 1
        return self._pool

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        super().close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else (
            "pool" if self._pool is not None else "lazy")
        return f"ThreadExecutor(max_workers={self.max_workers}, {state})"


class ProcessExecutor(Executor):
    """A ``ProcessPoolExecutor`` backend (true parallelism, pickled tasks).

    Every ``fn`` and every task is pickled into a worker process, so both
    must be defined at module level.  Unpicklable work surfaces as
    :class:`UnpicklableTaskError` naming the object, never as an opaque
    pool crash.  The pool is created on the first :meth:`map` that needs
    one and reused by every later call until :meth:`close`; a crashed pool
    is discarded (:class:`WorkerPoolBrokenError`) and replaced on the next
    call.

    Parameters
    ----------
    max_workers:
        Process count; defaults to ``$REPRO_WORKERS`` or the cpu count.
    """

    name = "processes"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__()
        self.max_workers = _default_workers(max_workers)
        self._pool: Optional[ProcessPoolExecutor] = None
        #: How many pools this executor has created over its lifetime.
        #: Stays at 1 across barriers unless a broken pool was discarded
        #: (then the next map() bumps it) — the observable half of the
        #: persistence and discard/replace contracts (§6).
        self.pools_created = 0

    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> List[Any]:
        self._ensure_open()
        tasks = list(tasks)
        self._check_picklable("task function", fn)
        if len(tasks) <= 1 and self._pool is None:
            # One task gains nothing from a pool, but the pickle contract
            # still holds so behavior is task-count-independent; with no
            # pool serialization this check is the only pass.
            for i, t in enumerate(tasks):
                self._check_picklable(f"task {i}", t)
            return [fn(t) for t in tasks]
        try:
            return list(self._ensure_pool().map(fn, tasks))
        except BrokenProcessPool as exc:
            self._discard_pool()
            raise WorkerPoolBrokenError(
                "a worker process died while executing tasks (crash, "
                "os._exit, or kill); the broken pool was discarded and the "
                "next map() call will start a fresh one"
            ) from exc
        except pickle.PicklingError as exc:
            raise UnpicklableTaskError(self._advice("a task", exc)) from exc
        except (AttributeError, TypeError) as exc:
            # Structured disambiguation, not message sniffing: besides
            # PicklingError, pickle signals failures as AttributeError or
            # TypeError ("Can't pickle local object ..."), which a task
            # body could equally raise on its own.  Re-checking the
            # payloads' picklability — only on this failure path — tells
            # the two apart exactly; any other exception type is task
            # code's own and propagates untouched.
            culprit = self._first_unpicklable(tasks)
            if culprit is None:
                raise
            raise UnpicklableTaskError(self._advice(culprit, exc)) from exc

    # ------------------------------------------------------------------ #
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            self.pools_created += 1
        return self._pool

    def _discard_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        super().close()

    # ------------------------------------------------------------------ #
    @classmethod
    def _check_picklable(cls, label: str, obj: Any) -> None:
        try:
            pickle.dumps(obj)
        except Exception as exc:
            raise UnpicklableTaskError(
                cls._advice(f"{label} ({obj!r})", exc)
            ) from exc

    @staticmethod
    def _first_unpicklable(tasks: List[Any]) -> Optional[str]:
        """The label of the first task that cannot be pickled, or ``None``."""
        for i, task in enumerate(tasks):
            try:
                pickle.dumps(task)
            except Exception:
                return f"task {i} ({task!r})"
        return None

    @staticmethod
    def _advice(what: str, exc: Exception) -> str:
        return _pickle_advice(what, exc)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else (
            "pool" if self._pool is not None else "lazy")
        return f"ProcessExecutor(max_workers={self.max_workers}, {state})"


#: What callers may pass wherever an executor is accepted: ``None`` (resolve
#: from ``$REPRO_EXECUTOR``, default serial), a backend name, or an instance.
ExecutorSpec = Union[None, str, Executor]

def _pickle_advice(what: str, exc: Exception) -> str:
    """The shared diagnosis for work that cannot cross a process boundary.

    Used by both the ``processes`` backend and the ``remote`` backend so
    the advice (and its wording) never drifts between them.
    """
    return (
        f"the executor cannot ship {what} to a worker: it is not "
        f"picklable. Summarizers, route functions, and compute functions "
        f"must be defined at module level (closures and lambdas cannot be "
        f"pickled); alternatively use the 'threads' or 'serial' backend. "
        f"Underlying error: {exc}"
    )


def _make_remote(max_workers: Optional[int] = None) -> Executor:
    # Imported lazily: the remote backend pulls in sockets, subprocess
    # management, and the piece cache, none of which the in-process
    # backends need, and repro.dist.remote imports *this* module.
    from repro.dist.remote import RemoteExecutor

    return RemoteExecutor(max_workers=max_workers)


_BACKENDS = {
    "serial": SerialExecutor,
    "threads": ThreadExecutor,
    "processes": ProcessExecutor,
    "remote": _make_remote,
}

_ALIASES = {
    "none": "serial",
    "sync": "serial",
    "thread": "threads",
    "process": "processes",
    "mp": "processes",
}


def available_backends() -> tuple:
    """The canonical backend names, in preference order."""
    return tuple(_BACKENDS)


def resolve_executor(
    spec: ExecutorSpec = None, workers: Optional[int] = None
) -> Executor:
    """Turn an :data:`ExecutorSpec` into a ready :class:`Executor`.

    ``None`` consults ``$REPRO_EXECUTOR`` (default ``serial``); a string
    names a backend (a few aliases are accepted); an :class:`Executor`
    instance passes through unchanged (``workers`` is then ignored —
    the instance already fixed its worker count).

    Ownership: an executor *created here* (spec was ``None`` or a name)
    belongs to the caller, which should ``close()`` it when its barriers
    are done; a passed-through instance stays owned by whoever built it.
    """
    if isinstance(spec, Executor):
        return spec
    if spec is None:
        spec = os.environ.get(EXECUTOR_ENV, "serial")
    if not isinstance(spec, str):
        raise ValueError(
            f"executor spec must be None, a backend name, or an Executor "
            f"instance, got {spec!r}; available backends: "
            f"{', '.join(available_backends())}"
        )
    name = _ALIASES.get(spec.strip().lower(), spec.strip().lower())
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown executor {spec!r}; available backends: "
            f"{', '.join(available_backends())}"
        )
    if name == "serial":
        return SerialExecutor()
    return _BACKENDS[name](max_workers=workers)


def validate_workers(workers: int) -> int:
    """The one place that owns the worker-count rule: an int >= 1.

    Every consumer — backend constructors, ``$REPRO_WORKERS`` resolution,
    and the CLI's ``--workers`` flag — funnels through here, so the error
    message (and the rule) can never drift between layers.  The message
    always names the offending value, including when ``int()`` itself
    rejects it (``None``, ``"four"``, ...).
    """
    try:
        workers = int(workers)
    except (TypeError, ValueError):
        raise ValueError(
            f"worker count must be an int >= 1, got {workers!r}"
        ) from None
    if workers < 1:
        raise ValueError(f"worker count must be >= 1, got {workers}")
    return workers


def _default_workers(max_workers: Optional[int]) -> int:
    if max_workers is None:
        env = os.environ.get(WORKERS_ENV)
        max_workers = int(env) if env else (os.cpu_count() or 1)
    return validate_workers(max_workers)
