"""Pluggable execution backends for the distributed substrate.

The paper's model is *simultaneous*: machines act independently and only a
barrier (the coordinator, or the end of a MapReduce round) joins their
results.  That independence is already real in the code — per-machine
generators are spawned from one ``SeedSequence`` and graph pieces are
immutable views — so the engine can fan the per-machine work out to an
:class:`Executor` without changing a single output bit.  This module
provides the three backends and the resolution logic shared by
:func:`~repro.dist.coordinator.run_simultaneous`,
:class:`~repro.dist.mapreduce.MapReduceSimulator`, and
:func:`~repro.experiments.harness.run_trials`.

The determinism contract (see ``docs/PARALLELISM.md``) is owned by the
*callers*, not the backends: an executor only promises that
:meth:`Executor.map` returns results **in input order**, regardless of
completion order.  Engines submit machines in index order and compose the
returned list positionally, so every backend produces bit-identical results
for the same seed.

Backends
--------
``serial``
    A plain loop in the calling process.  The default; zero overhead and
    no constraints on the task functions.
``threads``
    ``concurrent.futures.ThreadPoolExecutor``.  Shares memory with the
    caller, so closures are fine; pays the GIL, so it only helps when the
    per-machine work releases it (large numpy kernels) or when tasks block.
``processes``
    ``concurrent.futures.ProcessPoolExecutor``.  True parallelism, but
    every task — including the protocol's summarizer or the round's
    route/compute function — must be **picklable**: defined at module
    level, never a closure or a lambda.  Unpicklable tasks raise
    :class:`UnpicklableTaskError` *before* any worker starts.

Usage
-----
Run the Theorem 1 protocol with one process per machine::

    from repro.core.protocols import matching_coreset_protocol
    from repro.dist.coordinator import run_simultaneous
    from repro.graph.generators import planted_matching_gnp
    from repro.graph.partition import random_k_partition

    graph, _ = planted_matching_gnp(2000, 2000, p=3.0 / 4000, rng=0)
    part = random_k_partition(graph, k=8, rng=1)
    res = run_simultaneous(matching_coreset_protocol(), part, rng=2,
                           executor="processes")
    # Bit-identical to executor="serial" with the same seed.

Or pick the backend per environment (the CLI's ``--executor`` flag and the
CI's parallel leg both use this)::

    REPRO_EXECUTOR=processes REPRO_WORKERS=8 python -m pytest tests/ -q

An explicit instance gives control over the worker count::

    from repro.dist.executor import ProcessExecutor
    res = run_simultaneous(proto, part, rng=2,
                           executor=ProcessExecutor(max_workers=4))
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, Union

__all__ = [
    "EXECUTOR_ENV",
    "WORKERS_ENV",
    "Executor",
    "ExecutorError",
    "ExecutorSpec",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "UnpicklableTaskError",
    "available_backends",
    "resolve_executor",
    "validate_workers",
]

#: Environment variable selecting the default backend (``serial`` if unset).
EXECUTOR_ENV = "REPRO_EXECUTOR"
#: Environment variable selecting the default worker count (cpu count if unset).
WORKERS_ENV = "REPRO_WORKERS"


class ExecutorError(RuntimeError):
    """A task could not be executed on the selected backend."""


class UnpicklableTaskError(ExecutorError):
    """A task cannot cross a process boundary.

    Raised by the ``processes`` backend before any worker starts, so the
    failure names the offending object instead of surfacing as an opaque
    ``PicklingError`` from inside the pool machinery.
    """


class Executor:
    """Maps a function over tasks; results come back in **input order**.

    Subclasses implement :meth:`map`.  The order guarantee is the whole
    API: callers rely on it to compose per-machine results positionally,
    which is what keeps parallel runs bit-identical to serial ones.
    """

    name: str = "abstract"

    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> List[Any]:
        """Apply ``fn`` to every task; return results in input order."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialExecutor(Executor):
    """The plain loop: run every task in the calling process, in order."""

    name = "serial"

    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> List[Any]:
        return [fn(t) for t in tasks]


class ThreadExecutor(Executor):
    """A ``ThreadPoolExecutor`` backend (shared memory, GIL-bound).

    Parameters
    ----------
    max_workers:
        Thread count; defaults to ``$REPRO_WORKERS`` or the cpu count.
    """

    name = "threads"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = _default_workers(max_workers)

    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> List[Any]:
        tasks = list(tasks)
        if len(tasks) <= 1:
            return [fn(t) for t in tasks]
        with ThreadPoolExecutor(
            max_workers=min(self.max_workers, len(tasks))
        ) as pool:
            return list(pool.map(fn, tasks))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadExecutor(max_workers={self.max_workers})"


class ProcessExecutor(Executor):
    """A ``ProcessPoolExecutor`` backend (true parallelism, pickled tasks).

    Every ``fn`` and every task is pickled into a worker process, so both
    must be defined at module level.  Unpicklable work surfaces as
    :class:`UnpicklableTaskError` naming the object, never as an opaque
    pool crash — and without serializing the (potentially large) task
    payloads twice: only ``fn`` is pre-checked; task pickling failures are
    caught when the pool reports them.

    Parameters
    ----------
    max_workers:
        Process count; defaults to ``$REPRO_WORKERS`` or the cpu count.
    """

    name = "processes"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = _default_workers(max_workers)

    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> List[Any]:
        tasks = list(tasks)
        self._check_picklable("task function", fn)
        if len(tasks) <= 1:
            # One task gains nothing from a pool, but the pickle contract
            # still holds so behavior is task-count-independent; with no
            # pool serialization this check is the only pass.
            for i, t in enumerate(tasks):
                self._check_picklable(f"task {i}", t)
            return [fn(t) for t in tasks]
        try:
            with ProcessPoolExecutor(
                max_workers=min(self.max_workers, len(tasks))
            ) as pool:
                return list(pool.map(fn, tasks))
        except (pickle.PicklingError, AttributeError, TypeError) as exc:
            # Pickle signals failures with any of these types; a task that
            # failed to serialize on submission propagates here.
            if "pickle" not in str(exc).lower():
                raise
            raise UnpicklableTaskError(self._advice("a task", exc)) from exc

    @classmethod
    def _check_picklable(cls, label: str, obj: Any) -> None:
        try:
            pickle.dumps(obj)
        except Exception as exc:
            raise UnpicklableTaskError(
                cls._advice(f"{label} ({obj!r})", exc)
            ) from exc

    @staticmethod
    def _advice(what: str, exc: Exception) -> str:
        return (
            f"the 'processes' executor cannot ship {what} to a worker: "
            f"it is not picklable. Summarizers, route functions, and "
            f"compute functions must be defined at module level (closures "
            f"and lambdas cannot be pickled); alternatively use the "
            f"'threads' or 'serial' backend. Underlying error: {exc}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessExecutor(max_workers={self.max_workers})"


#: What callers may pass wherever an executor is accepted: ``None`` (resolve
#: from ``$REPRO_EXECUTOR``, default serial), a backend name, or an instance.
ExecutorSpec = Union[None, str, Executor]

_BACKENDS = {
    "serial": SerialExecutor,
    "threads": ThreadExecutor,
    "processes": ProcessExecutor,
}

_ALIASES = {
    "none": "serial",
    "sync": "serial",
    "thread": "threads",
    "process": "processes",
    "mp": "processes",
}


def available_backends() -> tuple:
    """The canonical backend names, in preference order."""
    return tuple(_BACKENDS)


def resolve_executor(
    spec: ExecutorSpec = None, workers: Optional[int] = None
) -> Executor:
    """Turn an :data:`ExecutorSpec` into a ready :class:`Executor`.

    ``None`` consults ``$REPRO_EXECUTOR`` (default ``serial``); a string
    names a backend (a few aliases are accepted); an :class:`Executor`
    instance passes through unchanged (``workers`` is then ignored —
    the instance already fixed its worker count).
    """
    if isinstance(spec, Executor):
        return spec
    if spec is None:
        spec = os.environ.get(EXECUTOR_ENV, "serial")
    if not isinstance(spec, str):
        raise ValueError(
            f"executor spec must be None, a backend name, or an Executor "
            f"instance, got {spec!r}; available backends: "
            f"{', '.join(available_backends())}"
        )
    name = _ALIASES.get(spec.strip().lower(), spec.strip().lower())
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown executor {spec!r}; available backends: "
            f"{', '.join(available_backends())}"
        )
    if name == "serial":
        return SerialExecutor()
    return _BACKENDS[name](max_workers=workers)


def validate_workers(workers: int) -> int:
    """The one place that owns the worker-count rule: an int >= 1.

    Every consumer — backend constructors, ``$REPRO_WORKERS`` resolution,
    and the CLI's ``--workers`` flag — funnels through here, so the error
    message (and the rule) can never drift between layers.
    """
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"worker count must be >= 1, got {workers}")
    return workers


def _default_workers(max_workers: Optional[int]) -> int:
    if max_workers is None:
        env = os.environ.get(WORKERS_ENV)
        max_workers = int(env) if env else (os.cpu_count() or 1)
    return validate_workers(max_workers)
