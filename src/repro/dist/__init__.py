"""The distributed substrate: simultaneous protocols and MapReduce.

The paper's model of computation is the *simultaneous communication model*:
the edges of a graph are partitioned across ``k`` machines, every machine
sends a single message (its coreset) to a coordinator, and the coordinator
must output a solution from the union of the messages alone.  Communication
is measured in bits (:mod:`repro.utils.bits`).  This package provides that
substrate, independent of any particular coreset:

* :mod:`repro.dist.message` — the :class:`~repro.dist.message.Message` a
  machine sends: an edge set, a fixed partial solution, and an auxiliary
  bit payload, with an exact bit-size accounting.
* :mod:`repro.dist.ledger` — the
  :class:`~repro.dist.ledger.CommunicationLedger` charging every message to
  its sender, so protocols are compared against the paper's lower bounds in
  the same currency.
* :mod:`repro.dist.machine` — one simulated
  :class:`~repro.dist.machine.Machine` holding a piece of the input and a
  private randomness stream.
* :mod:`repro.dist.coordinator` — the
  :class:`~repro.dist.coordinator.SimultaneousProtocol` description and the
  :func:`~repro.dist.coordinator.run_simultaneous` engine that executes it
  over a partitioned graph.
* :mod:`repro.dist.mapreduce` — the
  :class:`~repro.dist.mapreduce.MapReduceSimulator` with per-machine memory
  caps, for the paper's 2-round MPC corollaries.
* :mod:`repro.dist.executor` — pluggable execution backends (``serial``,
  ``threads``, ``processes``, ``remote``) for the per-machine work of both
  engines, with persistent worker pools amortized across rounds and trials.
* :mod:`repro.dist.shm` — zero-copy piece transfer: the
  :class:`~repro.dist.shm.SharedEdgeStore` places edge arrays in shared
  memory once and ships lightweight handles to workers instead of
  pickling arrays per task (``transfer="shared"``).
* :mod:`repro.dist.remote` — the socket coordinator behind
  ``executor="remote"``: ``repro worker`` processes joined over
  length-prefixed RPC, with per-task timeouts, bounded retry, heartbeats,
  and the content-addressed :class:`~repro.dist.remote.RemotePieceCache`
  (the remote analogue of ``transfer="shared"``).

Machines are independent in the model, and the engines preserve that
independence in the code, so the k per-machine computations can genuinely
run in parallel — with outputs bit-identical to a serial run for the same
seed, because results are always composed in machine-index order (the
contract documented in ``docs/PARALLELISM.md``)::

    from repro.core.protocols import matching_coreset_protocol
    from repro.dist import run_simultaneous
    from repro.graph.generators import planted_matching_gnp
    from repro.graph.partition import random_k_partition

    graph, _ = planted_matching_gnp(2000, 2000, p=3.0 / 4000, rng=0)
    part = random_k_partition(graph, k=8, rng=1)

    serial = run_simultaneous(matching_coreset_protocol(), part, rng=2)
    procs = run_simultaneous(matching_coreset_protocol(), part, rng=2,
                             executor="processes")  # one process per machine
    assert (serial.output == procs.output).all()

The ``processes`` backend requires picklable summarizers (the factories in
:mod:`repro.core.protocols` all qualify); setting ``REPRO_EXECUTOR``
selects the default backend for a whole run without touching call sites.
"""

from repro.dist.coordinator import (
    Coordinator,
    ProtocolResult,
    SimultaneousProtocol,
    run_simultaneous,
)
from repro.dist.executor import (
    Executor,
    ExecutorClosedError,
    ExecutorError,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    UnpicklableTaskError,
    WorkerPoolBrokenError,
    available_backends,
    resolve_executor,
)
from repro.dist.ledger import CommunicationLedger
from repro.dist.machine import Machine
from repro.dist.mapreduce import (
    MapReduceJob,
    MapReduceSimulator,
    MemoryCapExceeded,
    RoundRecord,
)
from repro.dist.message import Message
from repro.dist.remote import (
    RemoteDegradedWarning,
    RemoteExecutor,
    RemotePieceCache,
    RemoteTaskError,
)
from repro.dist.shm import (
    EdgeHandle,
    SharedEdgeStore,
    SharedPartitionView,
    SharedStoreClosedError,
    available_transfer_modes,
    resolve_transfer,
)

__all__ = [
    "CommunicationLedger",
    "Coordinator",
    "EdgeHandle",
    "Executor",
    "ExecutorClosedError",
    "ExecutorError",
    "Machine",
    "MapReduceJob",
    "MapReduceSimulator",
    "MemoryCapExceeded",
    "Message",
    "ProcessExecutor",
    "ProtocolResult",
    "RemoteDegradedWarning",
    "RemoteExecutor",
    "RemotePieceCache",
    "RemoteTaskError",
    "RoundRecord",
    "SerialExecutor",
    "SharedEdgeStore",
    "SharedPartitionView",
    "SharedStoreClosedError",
    "SimultaneousProtocol",
    "ThreadExecutor",
    "UnpicklableTaskError",
    "WorkerPoolBrokenError",
    "available_backends",
    "available_transfer_modes",
    "resolve_executor",
    "resolve_transfer",
    "run_simultaneous",
]
