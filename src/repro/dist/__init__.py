"""The distributed substrate: simultaneous protocols and MapReduce.

The paper's model of computation is the *simultaneous communication model*:
the edges of a graph are partitioned across ``k`` machines, every machine
sends a single message (its coreset) to a coordinator, and the coordinator
must output a solution from the union of the messages alone.  Communication
is measured in bits (:mod:`repro.utils.bits`).  This package provides that
substrate, independent of any particular coreset:

* :mod:`repro.dist.message` — the :class:`~repro.dist.message.Message` a
  machine sends: an edge set, a fixed partial solution, and an auxiliary
  bit payload, with an exact bit-size accounting.
* :mod:`repro.dist.ledger` — the
  :class:`~repro.dist.ledger.CommunicationLedger` charging every message to
  its sender, so protocols are compared against the paper's lower bounds in
  the same currency.
* :mod:`repro.dist.machine` — one simulated
  :class:`~repro.dist.machine.Machine` holding a piece of the input and a
  private randomness stream.
* :mod:`repro.dist.coordinator` — the
  :class:`~repro.dist.coordinator.SimultaneousProtocol` description and the
  :func:`~repro.dist.coordinator.run_simultaneous` engine that executes it
  over a partitioned graph.
* :mod:`repro.dist.mapreduce` — the
  :class:`~repro.dist.mapreduce.MapReduceSimulator` with per-machine memory
  caps, for the paper's 2-round MPC corollaries.
"""

from repro.dist.coordinator import (
    Coordinator,
    ProtocolResult,
    SimultaneousProtocol,
    run_simultaneous,
)
from repro.dist.ledger import CommunicationLedger
from repro.dist.machine import Machine
from repro.dist.mapreduce import (
    MapReduceJob,
    MapReduceSimulator,
    MemoryCapExceeded,
    RoundRecord,
)
from repro.dist.message import Message

__all__ = [
    "CommunicationLedger",
    "Coordinator",
    "Machine",
    "MapReduceJob",
    "MapReduceSimulator",
    "MemoryCapExceeded",
    "Message",
    "ProtocolResult",
    "RoundRecord",
    "SimultaneousProtocol",
    "run_simultaneous",
]
