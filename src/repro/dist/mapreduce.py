"""MapReduce (MPC) simulator with per-machine memory accounting.

The paper's MapReduce corollaries run with ``k = √n`` machines of memory
Õ(n·√n) and finish in at most two rounds: one *shuffle* round that turns an
arbitrary edge placement into the random k-partitioning, and one *compute*
round where every machine ships its coreset to a designated solver machine.
The simulator executes exactly those primitives over in-memory edge arrays:

* :meth:`MapReduceSimulator.shuffle_round` — every machine routes each of
  its edges to a destination machine (edge-conserving by construction;
  route arrays are shape- and range-validated);
* :meth:`MapReduceSimulator.compute_round` — every machine maps its edge
  set to a new edge set (a coreset, a matching, ...), optionally
  concentrating all outputs on one machine (``send_to``);
* the per-machine memory cap — the MPC model's defining constraint — is
  enforced after loading and after every round, raising
  :class:`MemoryCapExceeded` on violation rather than silently simulating
  a machine that could not exist.

Every round appends a :class:`RoundRecord` to the :class:`MapReduceJob`
log, so experiments can report round counts, shuffle volume, and peak
memory without instrumenting the algorithms themselves.

Rounds are barriers, so per-machine route/compute work can run on any
:mod:`repro.dist.executor` backend (serial, threads, processes) with
bit-identical results per seed: outputs and advanced generator states are
adopted in machine-index order after every round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from repro.dist.executor import Executor, ExecutorSpec, resolve_executor
from repro.dist.shm import SharedEdgeStore, open_edges, resolve_transfer
from repro.graph.edgelist import Graph
from repro.utils.rng import RandomState, spawn_generators

__all__ = [
    "MapReduceJob",
    "MapReduceSimulator",
    "MemoryCapExceeded",
    "RoundRecord",
]

# route_fn(machine_index, edges, rng) -> destination machine per edge
RouteFn = Callable[[int, np.ndarray, np.random.Generator], np.ndarray]
# compute_fn(machine_index, edges, rng) -> new (m', 2) edge array, or a
# tuple (edge array, aux payload); aux payloads are collected by
# compute_round in machine-index order.
ComputeFn = Callable[[int, np.ndarray, np.random.Generator], np.ndarray]


def _route_machine(task: tuple) -> tuple:
    """One machine's routing step, as an executor-shippable unit of work.

    Returns the destination array *and* the generator: on the process
    backend the generator advanced in a worker's copy, so the simulator
    must adopt the returned state to stay bit-identical with serial runs.
    """
    i, edges, gen, route_fn = task
    dest = route_fn(i, edges, gen)
    return dest, gen


def _compute_machine(task: tuple) -> tuple:
    """One machine's compute step, as an executor-shippable unit of work."""
    i, edges, gen, compute_fn = task
    out = compute_fn(i, edges, gen)
    return out, gen


def _round_machine_shared(task: tuple) -> tuple:
    """The zero-copy twin of the round workers above.

    The task ships an :class:`~repro.dist.shm.EdgeHandle` instead of the
    machine's edge array; the worker maps the shared segment read-only and
    runs the round function over the view in place.  Mapping lifetime is
    reference-counted: dropping the local view releases the segment unless
    the round's output aliases its input, which keeps it alive exactly as
    long as the result needs.
    """
    i, handle, gen, round_fn = task
    attachment = open_edges(handle)
    edges = attachment.array
    try:
        out = round_fn(i, edges, gen)
    finally:
        del edges
        attachment.release()
    return out, gen


class MemoryCapExceeded(RuntimeError):
    """A machine would hold more edges than its memory budget allows."""


@dataclass(frozen=True)
class RoundRecord:
    """One round of the job log."""

    kind: str  # "shuffle" or "compute"
    total_edges_moved: int
    machine_sizes: np.ndarray  # per-machine edge counts after the round


@dataclass
class MapReduceJob:
    """The accumulated log of one MapReduce execution."""

    rounds: List[RoundRecord] = field(default_factory=list)
    peak_machine_edges: int = 0

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    @property
    def total_shuffled_edges(self) -> int:
        """Edges that crossed machines, summed over all rounds."""
        return sum(r.total_edges_moved for r in self.rounds)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MapReduceJob(n_rounds={self.n_rounds}, "
            f"peak_machine_edges={self.peak_machine_edges}, "
            f"total_shuffled_edges={self.total_shuffled_edges})"
        )


class MapReduceSimulator:
    """k machines, each holding an edge array, advancing in lockstep rounds.

    Parameters
    ----------
    n_vertices:
        Vertex count of the underlying graph (all machines know ``V``).
    k:
        Number of machines.
    rng:
        Seed or generator; fans out into one private stream per machine.
    memory_cap_edges:
        Per-machine memory budget in edges (the MPC constraint), or
        ``None`` for unbounded.  Checked after :meth:`load` and after every
        round.
    executor:
        How per-machine round work runs: ``"serial"`` (default),
        ``"threads"``, ``"processes"``, an
        :class:`~repro.dist.executor.Executor` instance, or ``None`` to
        consult ``$REPRO_EXECUTOR``.  Rounds are barriers: results are
        adopted in machine-index order, and each machine's generator state
        is threaded back from the workers, so all backends are
        bit-identical per seed.  The ``processes`` backend requires
        picklable route/compute functions (no lambdas or closures).  The
        executor's worker pool persists *across rounds* — pool start-up is
        paid once per job, not once per barrier.  An executor resolved
        here (name/``None``) is owned by the simulator and released by
        :meth:`close` (simulators are context managers); a passed-in
        instance stays open for the caller to reuse.
    transfer:
        How per-machine edge arrays reach round workers: ``"pickle"``
        (serialized per task — the default) or ``"shared"`` (each round's
        arrays are written once into a shared-memory segment and workers
        map read-only views; see :mod:`repro.dist.shm`).  ``None``
        resolves from ``$REPRO_TRANSFER``.  Outputs are bit-identical
        across modes.
    """

    def __init__(
        self,
        n_vertices: int,
        k: int,
        rng: RandomState = None,
        memory_cap_edges: Optional[int] = None,
        executor: ExecutorSpec = None,
        transfer: Optional[str] = None,
    ) -> None:
        if n_vertices < 0:
            raise ValueError(
                f"n_vertices must be non-negative, got {n_vertices}"
            )
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        if memory_cap_edges is not None and memory_cap_edges < 0:
            raise ValueError(
                f"memory_cap_edges must be non-negative, got {memory_cap_edges}"
            )
        self.n_vertices = int(n_vertices)
        self.k = int(k)
        self.memory_cap_edges = memory_cap_edges
        self.executor = resolve_executor(executor)
        self._owns_executor = not isinstance(executor, Executor)
        self.transfer = resolve_transfer(transfer)
        self._machine_gens = spawn_generators(rng, self.k)
        self._edges: List[np.ndarray] = [
            np.zeros((0, 2), dtype=np.int64) for _ in range(self.k)
        ]
        self._loaded = False
        self.job = MapReduceJob()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the executor's worker pool if this simulator owns it.

        Idempotent.  A simulator handed an :class:`Executor` instance
        never closes it — the caller amortizes that pool across jobs.
        """
        if self._owns_executor:
            self.executor.close()

    def __enter__(self) -> "MapReduceSimulator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #
    def load(self, pieces: Sequence[np.ndarray]) -> None:
        """Place the initial edge arrays on the machines (round 0, free)."""
        if len(pieces) != self.k:
            raise ValueError(
                f"expected {self.k} pieces, got {len(pieces)}"
            )
        self._edges = [self._validate_edges(p, owner=i)
                       for i, p in enumerate(pieces)]
        self._loaded = True
        self._enforce_memory_cap("load")
        self._track_peak()

    def machine_sizes(self) -> np.ndarray:
        """Per-machine edge counts as a length-``k`` int64 array."""
        return np.array([e.shape[0] for e in self._edges], dtype=np.int64)

    def machine_edges(self, i: int) -> np.ndarray:
        """The raw ``(m_i, 2)`` edge array currently on machine ``i``."""
        self._check_machine(i, "machine index")
        return self._edges[i]

    def machine_graph(self, i: int) -> Graph:
        """Machine ``i``'s piece as a graph on the full vertex set."""
        return Graph(self.n_vertices, self.machine_edges(i))

    # ------------------------------------------------------------------ #
    # rounds
    # ------------------------------------------------------------------ #
    def shuffle_round(self, route_fn: RouteFn) -> None:
        """One communication round: every machine routes each of its edges.

        ``route_fn(i, edges, rng)`` must return one destination machine id
        per edge of machine ``i``.  Edges are conserved by construction:
        every edge lands on exactly the machine its owner routed it to.
        """
        results = self._run_round(route_fn, _route_machine)

        all_edges: List[np.ndarray] = []
        all_dest: List[np.ndarray] = []
        moved = 0
        for i, (raw_dest, gen) in enumerate(results):
            self._machine_gens[i] = gen
            edges = self._edges[i]
            dest = np.asarray(raw_dest, dtype=np.int64)
            if dest.shape != (edges.shape[0],):
                raise ValueError(
                    f"route function must return one destination per edge: "
                    f"machine {i} has {edges.shape[0]} edges but got "
                    f"shape {dest.shape}"
                )
            if dest.size and (dest.min() < 0 or dest.max() >= self.k):
                raise ValueError(
                    f"machine {i} routed edges to destinations out of range "
                    f"[0, {self.k})"
                )
            moved += int((dest != i).sum())
            all_edges.append(edges)
            all_dest.append(dest)

        stacked = np.vstack(all_edges) if all_edges else \
            np.zeros((0, 2), dtype=np.int64)
        dests = np.concatenate(all_dest) if all_dest else \
            np.zeros(0, dtype=np.int64)
        # One bincount-style pass: sort edges by destination, then split.
        order = np.argsort(dests, kind="stable")
        stacked = stacked[order]
        counts = np.bincount(dests, minlength=self.k)
        bounds = np.concatenate([[0], np.cumsum(counts)])
        self._edges = [
            np.ascontiguousarray(stacked[bounds[j]:bounds[j + 1]])
            for j in range(self.k)
        ]
        self._finish_round("shuffle", moved)

    def compute_round(
        self, compute_fn: ComputeFn, send_to: Optional[int] = None
    ) -> List[Any]:
        """One local-computation round, optionally concentrating output.

        ``compute_fn(i, edges, rng)`` maps machine ``i``'s edge array to a
        new edge array (e.g. its coreset).  With ``send_to=None`` each
        output stays on its machine; with ``send_to=j`` all outputs are
        shipped to machine ``j`` (the paper's round-2 pattern), which
        counts as shuffle volume for every non-``j`` machine.

        A compute function may also return a ``(edges, aux)`` pair; the
        ``aux`` payloads (e.g. the fixed vertices of a VC coreset) are
        returned as a length-``k`` list in machine-index order.  Machines
        whose compute returned a bare edge array contribute ``None``.  This
        is the executor-safe replacement for side-channel mutation of
        caller state, which cannot cross a process boundary.
        """
        if send_to is not None:
            self._check_machine(send_to, "send_to machine")
        results = self._run_round(compute_fn, _compute_machine)

        outputs: List[np.ndarray] = []
        aux: List[Any] = []
        for i, (out, gen) in enumerate(results):
            self._machine_gens[i] = gen
            if isinstance(out, tuple):
                if len(out) != 2:
                    raise ValueError(
                        f"machine {i}: compute function returning a tuple "
                        f"must return (edges, aux), got length {len(out)}"
                    )
                out, extra = out
            else:
                extra = None
            aux.append(extra)
            outputs.append(self._validate_edges(out, owner=i))

        if send_to is None:
            self._edges = outputs
            moved = 0
        else:
            moved = sum(
                out.shape[0] for i, out in enumerate(outputs) if i != send_to
            )
            concentrated = np.vstack(outputs) if outputs else \
                np.zeros((0, 2), dtype=np.int64)
            self._edges = [
                np.zeros((0, 2), dtype=np.int64) for _ in range(self.k)
            ]
            self._edges[send_to] = concentrated
        self._finish_round("compute", moved)
        return aux

    def local_round(self, compute_fn: ComputeFn) -> List[Any]:
        """A purely local round: :meth:`compute_round` with no shipping."""
        return self.compute_round(compute_fn, send_to=None)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _run_round(self, round_fn: Any, pickle_worker: Any) -> List[tuple]:
        """Fan one round's per-machine work out on the configured backend.

        With ``transfer="shared"`` the round's edge arrays are packed into
        one shared segment and workers receive handles; the store lives
        exactly as long as the barrier.  Either way results come back as
        ``(output, generator)`` pairs in machine-index order.
        """
        if self.transfer == "shared":
            with SharedEdgeStore() as store:
                handles = store.put_arrays(self._edges)
                tasks = [
                    (i, handles[i], self._machine_gens[i], round_fn)
                    for i in range(self.k)
                ]
                return self.executor.map(_round_machine_shared, tasks)
        tasks = [
            (i, self._edges[i], self._machine_gens[i], round_fn)
            for i in range(self.k)
        ]
        return self.executor.map(pickle_worker, tasks)

    def _validate_edges(self, edges: np.ndarray, owner: int) -> np.ndarray:
        arr = np.asarray(edges, dtype=np.int64)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError(
                f"machine {owner}: edges must have shape (m, 2), "
                f"got {arr.shape}"
            )
        if arr.size and (arr.min() < 0 or arr.max() >= self.n_vertices):
            raise ValueError(
                f"machine {owner}: edge endpoints must lie in "
                f"[0, {self.n_vertices})"
            )
        return np.ascontiguousarray(arr)

    def _check_machine(self, i: int, what: str) -> None:
        if not 0 <= i < self.k:
            raise ValueError(f"{what} {i} out of range [0, {self.k})")

    def _enforce_memory_cap(self, when: str) -> None:
        if self.memory_cap_edges is None:
            return
        sizes = self.machine_sizes()
        worst = int(sizes.argmax()) if self.k else 0
        if sizes.size and sizes[worst] > self.memory_cap_edges:
            raise MemoryCapExceeded(
                f"after {when}: machine {worst} holds {int(sizes[worst])} "
                f"edges, exceeding the memory cap of "
                f"{self.memory_cap_edges} edges"
            )

    def _track_peak(self) -> None:
        if self.k:
            self.job.peak_machine_edges = max(
                self.job.peak_machine_edges, int(self.machine_sizes().max())
            )

    def _finish_round(self, kind: str, moved: int) -> None:
        self._enforce_memory_cap(f"{kind} round {self.job.n_rounds + 1}")
        self._track_peak()
        self.job.rounds.append(
            RoundRecord(
                kind=kind,
                total_edges_moved=moved,
                machine_sizes=self.machine_sizes(),
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MapReduceSimulator(n_vertices={self.n_vertices}, k={self.k}, "
            f"rounds={self.job.n_rounds}, "
            f"edges={int(self.machine_sizes().sum())})"
        )
