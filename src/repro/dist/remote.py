"""Remote execution: a socket coordinator plus ``repro worker`` processes.

The first three backends (:mod:`repro.dist.executor`) stop at one host —
threads and process pools both assume the operating system can see every
worker.  :class:`RemoteExecutor` is the distributed seam the paper's model
actually describes: a **coordinator** that listens on a TCP socket and k
**workers** that connect to it (``repro worker --connect HOST:PORT``),
exchange length-prefixed pickled frames, and execute the same task tuples
the ``processes`` backend ships.  Today the executor launches its workers
as local subprocesses; because the wire protocol is plain sockets, the
same workers can run on other hosts by pointing ``repro worker`` at a
coordinator bound with ``$REPRO_REMOTE_BIND`` — nothing in the protocol
assumes a shared kernel.

Determinism is inherited, not re-proven: an executor only promises
input-order results (``docs/PARALLELISM.md`` §1), randomness is assigned
to tasks before the fan-out, and a retried task re-runs the *same* pickled
payload — so a worker crash mid-round changes scheduling, never output
bits.  The contract is asserted by ``tests/test_remote_faults.py``.

Robustness primitives the in-process backends never needed:

* **per-task timeouts** — a worker that holds a task past ``task_timeout``
  is declared hung, disconnected (and killed, if this executor spawned
  it), and the task is reassigned;
* **bounded retry with backoff** — infrastructure failures (worker death,
  timeout, dropped connection) requeue the task up to ``retries`` times
  with exponential backoff; *task exceptions* are deterministic and are
  re-raised immediately, never retried;
* **worker heartbeats** — workers beat every ``$REPRO_REMOTE_HEARTBEAT``
  seconds from a side thread, so a slow-but-alive worker is distinguished
  from a dead one without waiting out the task timeout;
* **graceful degradation** — if no worker connects within
  ``connect_timeout`` the executor warns (:class:`RemoteDegradedWarning`)
  and transparently falls back to a local ``processes`` pool, so
  ``--executor remote`` on a machine with no fleet still completes.

Piece transfer
--------------
Shipping a graph piece inside every task pickles the same bytes once per
barrier per task — the remote analogue of the problem
:class:`~repro.dist.shm.SharedEdgeStore` solves locally.  The
:class:`RemotePieceCache` removes it at the wire: when a task is
serialized, every :class:`~repro.graph.edgelist.Graph` above a size
threshold is replaced by its **content digest** (via the pickle
``persistent_id`` hook); a worker that has not seen the digest sends one
``fetch`` frame, receives the payload once, and **pins** it for every
later task — so repeated barriers over the same partition ship each
piece's bytes at most once per worker, like ``SharedPartitionView`` ships
them once per host.

Lifecycle
---------
The full executor contract of ``docs/PARALLELISM.md`` §6 holds: the worker
pool (listener + subprocesses) is created lazily on the first
:meth:`RemoteExecutor.map` that needs it and reused until ``close()``;
``close()`` is idempotent; ``map()`` after ``close()`` raises
:class:`~repro.dist.executor.ExecutorClosedError`; losing *every* worker
with no replacement raises
:class:`~repro.dist.executor.WorkerPoolBrokenError` and discards the pool,
so the next ``map()`` transparently starts a fresh one.

Usage
-----
Run the Theorem 1 protocol on two locally-spawned workers::

    from repro.dist.remote import RemoteExecutor

    with RemoteExecutor(max_workers=2) as ex:
        res = run_simultaneous(proto, part, rng=2, executor=ex)
        # Bit-identical to executor="serial" with the same seed.

Or join externally-launched workers (same host or not)::

    REPRO_REMOTE_BIND=0.0.0.0:7341 REPRO_REMOTE_SPAWN=0 \\
        repro solve planted:n=4000 --solver coreset --problem matching \\
        --k 8 --executor remote          # coordinator
    repro worker --connect HOST:7341    # each worker, anywhere

Chaos hooks
-----------
The worker loop carries env-triggered fault-injection hooks
(``REPRO_CHAOS_KILL`` / ``REPRO_CHAOS_HANG`` / ``REPRO_CHAOS_SLOW_MS``,
scoped by ``REPRO_CHAOS_LATCH`` so exactly one worker misbehaves) used by
``tests/chaos.py`` to prove the retry/timeout paths; with none of the
variables set the hook is a single dict lookup per task.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import socket
import struct
import subprocess
import sys
import threading
import time
import warnings
from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.dist.executor import (
    Executor,
    ExecutorError,
    ProcessExecutor,
    WorkerPoolBrokenError,
    _default_workers,
    _pickle_advice,
)

__all__ = [
    "REMOTE_BIND_ENV",
    "REMOTE_CACHE_MIN_ENV",
    "REMOTE_CONNECT_TIMEOUT_ENV",
    "REMOTE_HEARTBEAT_ENV",
    "REMOTE_RETRIES_ENV",
    "REMOTE_SPAWN_ENV",
    "REMOTE_TIMEOUT_ENV",
    "RemoteDegradedWarning",
    "RemoteExecutor",
    "RemotePieceCache",
    "RemoteTaskError",
    "worker_main",
]

#: Coordinator bind address, ``HOST:PORT`` (default ``127.0.0.1:0`` — an
#: ephemeral loopback port; bind a fixed port to accept external workers).
REMOTE_BIND_ENV = "REPRO_REMOTE_BIND"
#: How many local ``repro worker`` subprocesses the executor launches
#: (default: ``max_workers``; ``0`` relies entirely on external workers).
REMOTE_SPAWN_ENV = "REPRO_REMOTE_SPAWN"
#: Per-task timeout in seconds (default: unset — no timeout).
REMOTE_TIMEOUT_ENV = "REPRO_REMOTE_TIMEOUT"
#: Infrastructure-failure retries per task (default 2).
REMOTE_RETRIES_ENV = "REPRO_REMOTE_RETRIES"
#: Seconds to wait for the first worker before degrading (default 20).
REMOTE_CONNECT_TIMEOUT_ENV = "REPRO_REMOTE_CONNECT_TIMEOUT"
#: Worker heartbeat interval in seconds (default 1.0).
REMOTE_HEARTBEAT_ENV = "REPRO_REMOTE_HEARTBEAT"
#: Smallest graph payload (bytes) the piece cache digests (default 4096).
REMOTE_CACHE_MIN_ENV = "REPRO_REMOTE_CACHE_MIN"

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL
_RECV_CHUNK = 1 << 20
#: Default for ``$REPRO_REMOTE_CONNECT_TIMEOUT`` — shared by the
#: coordinator's wait-for-workers window and the worker's connect-retry
#: grace so the two sides of the startup race actually mirror.
_DEFAULT_CONNECT_TIMEOUT = 20.0


class RemoteTaskError(ExecutorError):
    """A task exhausted its retry budget on the remote backend.

    Raised only for *infrastructure* failures — worker deaths, timeouts,
    dropped connections.  An exception raised by the task function itself
    is deterministic, so it is re-raised in the caller unretried.
    """


class RemoteDegradedWarning(RuntimeWarning):
    """No worker connected in time; the run fell back to ``processes``."""


# --------------------------------------------------------------------- #
# wire protocol: 4-byte length prefix + pickled tuple
# --------------------------------------------------------------------- #
def _send_frame(sock: socket.socket, message: tuple,
                lock: Optional[threading.Lock] = None) -> None:
    payload = pickle.dumps(message, _PICKLE_PROTOCOL)
    data = struct.pack("!I", len(payload)) + payload
    if lock is not None:
        with lock:
            sock.sendall(data)
    else:
        sock.sendall(data)


class _FrameReader:
    """Incremental frame decoder that survives recv timeouts.

    A timeout may land mid-frame; the partial bytes stay buffered so the
    next call resumes exactly where the stream left off — the coordinator
    uses short recv timeouts as its heartbeat/deadline polling clock, so
    losing sync on timeout would corrupt the protocol.
    """

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._buf = bytearray()
        self._want: Optional[int] = None

    def recv(self, timeout: Optional[float]) -> Optional[tuple]:
        """The next frame, or ``None`` on timeout.

        Raises :class:`ConnectionError` when the peer closed the stream.
        """
        self.sock.settimeout(timeout)
        while True:
            if self._want is None and len(self._buf) >= 4:
                self._want = struct.unpack("!I", bytes(self._buf[:4]))[0]
                del self._buf[:4]
            if self._want is not None and len(self._buf) >= self._want:
                frame = bytes(self._buf[: self._want])
                del self._buf[: self._want]
                self._want = None
                return pickle.loads(frame)
            try:
                chunk = self.sock.recv(_RECV_CHUNK)
            except socket.timeout:
                return None
            except OSError as exc:
                raise ConnectionError(f"connection lost: {exc}") from exc
            if not chunk:
                raise ConnectionError("connection closed by peer")
            self._buf += chunk


# --------------------------------------------------------------------- #
# the piece cache (coordinator side) and its pickle hooks
# --------------------------------------------------------------------- #
class RemotePieceCache:
    """Content-addressed payload store: serialize once, fetch-and-pin.

    The coordinator-side half of the remote transfer strategy.  When a
    task is pickled, graph pieces above ``min_bytes`` are swapped for the
    sha256 digest of their pickled payload (:class:`_CachingPickler`); the
    payload itself is stored here exactly once per distinct content.
    Workers resolve a digest they have not pinned with one ``fetch``
    round-trip and keep the object for every later task — the remote
    analogue of :class:`~repro.dist.shm.SharedPartitionView`, with content
    digests playing the role segment names play locally.

    Counters (``pieces_stored`` / ``store_hits`` / ``fetches_served`` /
    ``bytes_stored`` / ``bytes_shipped``) let tests and ``repro bench``
    assert the ship-bytes-once claim instead of trusting it.
    """

    def __init__(self, min_bytes: Optional[int] = None) -> None:
        if min_bytes is None:
            min_bytes = int(os.environ.get(REMOTE_CACHE_MIN_ENV, 4096))
        self.min_bytes = max(int(min_bytes), 0)
        self._payloads: Dict[str, bytes] = {}
        self._lock = threading.Lock()
        self.pieces_stored = 0
        self.store_hits = 0
        self.fetches_served = 0
        self.bytes_stored = 0
        self.bytes_shipped = 0

    # ------------------------------------------------------------------ #
    def cacheable(self, obj: Any) -> bool:
        """Whether ``obj`` should cross the wire as a digest."""
        # Imported lazily so a worker process can import this module
        # before it ever touches numpy.
        from repro.graph.edgelist import Graph

        return (
            isinstance(obj, Graph)
            and obj.n_edges * 16 >= self.min_bytes
        )

    def register(self, obj: Any) -> str:
        """Store ``obj``'s payload (if new) and return its content digest."""
        payload = pickle.dumps(obj, _PICKLE_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest()
        with self._lock:
            if digest not in self._payloads:
                self._payloads[digest] = payload
                self.pieces_stored += 1
                self.bytes_stored += len(payload)
            else:
                self.store_hits += 1
        return digest

    def payload(self, digest: str) -> bytes:
        """The stored payload for ``digest`` (served to worker fetches)."""
        with self._lock:
            payload = self._payloads[digest]
            self.fetches_served += 1
            self.bytes_shipped += len(payload)
        return payload

    def __len__(self) -> int:
        return len(self._payloads)

    def stats(self) -> Dict[str, int]:
        """A snapshot of the cache counters (JSON-ready)."""
        with self._lock:
            return dict(
                pieces_stored=self.pieces_stored,
                store_hits=self.store_hits,
                fetches_served=self.fetches_served,
                bytes_stored=self.bytes_stored,
                bytes_shipped=self.bytes_shipped,
            )


_PIECE_TAG = "repro-remote-piece"


class _CachingPickler(pickle.Pickler):
    """Swaps cacheable graphs for content digests while pickling a task."""

    def __init__(self, file: io.BytesIO, cache: Optional[RemotePieceCache]):
        super().__init__(file, _PICKLE_PROTOCOL)
        self._cache = cache

    def persistent_id(self, obj: Any) -> Optional[tuple]:
        if self._cache is not None and self._cache.cacheable(obj):
            return (_PIECE_TAG, self._cache.register(obj))
        return None


class _FetchingUnpickler(pickle.Unpickler):
    """Resolves piece digests through the worker's fetch-and-pin cache."""

    def __init__(self, file: io.BytesIO, fetch: Callable[[str], Any]):
        super().__init__(file)
        self._fetch = fetch

    def persistent_load(self, pid: tuple) -> Any:
        tag, digest = pid
        if tag != _PIECE_TAG:  # pragma: no cover - protocol guard
            raise pickle.UnpicklingError(f"unknown persistent id tag {tag!r}")
        return self._fetch(digest)


def _dump_task(fn: Callable[[Any], Any], task: Any,
               cache: Optional[RemotePieceCache]) -> bytes:
    buf = io.BytesIO()
    _CachingPickler(buf, cache).dump((fn, task))
    return buf.getvalue()


# --------------------------------------------------------------------- #
# coordinator internals
# --------------------------------------------------------------------- #
class _WorkerGone(Exception):
    """Internal: this worker connection is unusable (died / hung / lost)."""


class _PoolStopped(Exception):
    """Internal: the pool is shutting down; handler threads unwind."""


class _WorkerConn:
    """Coordinator-side record of one connected worker."""

    def __init__(self, sock: socket.socket, info: dict,
                 proc: Optional[subprocess.Popen],
                 reader: Optional[_FrameReader] = None) -> None:
        self.sock = sock
        # Reuse the reader that consumed the hello frame: any bytes it
        # recv'd past the hello (an early heartbeat coalesced into the
        # same chunk) are buffered there, and dropping them would desync
        # the length-prefixed stream permanently.
        self.reader = reader if reader is not None else _FrameReader(sock)
        self.info = info
        self.proc = proc
        self.send_lock = threading.Lock()
        self.last_seen = time.monotonic()
        self.dead = False
        self.tasks_done = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"_WorkerConn(pid={self.info.get('pid')}, "
                f"{'dead' if self.dead else 'live'})")


class _RemotePool:
    """Listener, worker registry, and the retrying barrier scheduler.

    One pool serves every :meth:`RemoteExecutor.map` barrier until the
    executor closes (or the pool breaks).  Handler threads — one per
    worker connection — pull task indices from the shared queue, ship the
    pre-pickled payload, serve ``fetch`` requests inline, and deliver the
    result; every failure mode funnels through :meth:`_retire_worker`,
    which requeues the in-flight task with backoff and spawns a
    replacement when this pool launched its own workers.
    """

    def __init__(self, ex: "RemoteExecutor") -> None:
        self._ex = ex
        self._cond = threading.Condition()
        self._workers: List[_WorkerConn] = []
        self._stopping = False
        self._spawned: List[subprocess.Popen] = []

        # Barrier state, all guarded by _cond.
        self._barrier = 0          # generation counter; stale results ignored
        self._payloads: Optional[List[bytes]] = None
        self._pending: deque = deque()
        self._not_before: Dict[int, float] = {}
        self._attempts: Dict[int, int] = {}
        self._results: Dict[int, Tuple[str, Any]] = {}
        self._outstanding = 0
        self._failure: Optional[BaseException] = None
        self._respawns_left = 0

        host, port = ex.bind_address
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(128)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]

        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-remote-accept", daemon=True
        )
        self._accept_thread.start()
        for _ in range(ex.spawn_workers):
            self._spawn_one()

    # ------------------------------------------------------------------ #
    # worker arrival
    # ------------------------------------------------------------------ #
    def _spawn_one(self) -> None:
        host, port = self.address
        cmd = [sys.executable, "-m", "repro", "worker",
               "--connect", f"{host}:{port}"]
        env = os.environ.copy()
        # A remote worker *imports* task functions (pickle-by-reference),
        # it does not inherit them by fork — so locally-spawned workers
        # get the coordinator's full import path, letting them resolve
        # anything the coordinator could (test modules included).
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        proc = subprocess.Popen(cmd, stdout=subprocess.DEVNULL, env=env)
        self._spawned.append(proc)

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed: pool is shutting down
            threading.Thread(
                target=self._admit, args=(conn,),
                name="repro-remote-admit", daemon=True,
            ).start()

    def _admit(self, conn: socket.socket) -> None:
        """Read the hello frame and register the worker."""
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            reader = _FrameReader(conn)
            hello = reader.recv(timeout=10.0)
            if hello is None or hello[0] != "hello":
                conn.close()
                return
        except (ConnectionError, OSError, pickle.UnpicklingError):
            conn.close()
            return
        info = hello[1]
        proc = None
        pid = info.get("pid")
        for candidate in self._spawned:
            if candidate.pid == pid:
                proc = candidate
                break
        worker = _WorkerConn(conn, info, proc, reader=reader)
        with self._cond:
            if self._stopping:
                conn.close()
                return
            self._workers.append(worker)
            self._cond.notify_all()
        threading.Thread(
            target=self._serve, args=(worker,),
            name=f"repro-remote-worker-{pid}", daemon=True,
        ).start()

    def wait_for_workers(self, count: int, timeout: float) -> bool:
        """Block until ``count`` workers are connected (or timeout)."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while len(self._workers) < count:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(timeout=min(remaining, 0.1))
        return True

    @property
    def n_workers(self) -> int:
        with self._cond:
            return len(self._workers)

    # ------------------------------------------------------------------ #
    # the barrier
    # ------------------------------------------------------------------ #
    def run_barrier(self, payloads: List[bytes]) -> List[Any]:
        """Execute one pre-pickled task batch; results in input order."""
        n = len(payloads)
        with self._cond:
            self._barrier += 1
            self._payloads = payloads
            self._pending = deque(range(n))
            self._not_before = {}
            self._attempts = {i: 0 for i in range(n)}
            self._results = {}
            self._outstanding = n
            self._failure = None
            # Enough replacement workers that a barrier can always burn
            # through its full retry budget: a spawned pool ends in a
            # definitive RemoteTaskError, never a stalled fleet.  (A
            # connect-only pool has spawn_workers=0 and never respawns;
            # losing its whole fleet is the WorkerPoolBrokenError path.)
            self._respawns_left = max(
                2 * self._ex.spawn_workers,
                (1 + self._ex.retries) * n,
            )
            self._cond.notify_all()

            no_worker_since: Optional[float] = None
            while self._outstanding > 0 and self._failure is None:
                self._cond.wait(timeout=0.1)
                # Backstop against a silent stall: every worker gone and no
                # replacement ever arrived (e.g. respawns exhausted, or an
                # external fleet walked away).
                if self._workers:
                    no_worker_since = None
                elif no_worker_since is None:
                    no_worker_since = time.monotonic()
                elif (time.monotonic() - no_worker_since
                      > self._ex.connect_timeout):
                    self._failure = WorkerPoolBrokenError(
                        "every remote worker disconnected and no "
                        "replacement arrived; the pool was discarded and "
                        "the next map() call will start a fresh one"
                    )

            failure = self._failure
            results = None if failure else [self._results[i] for i in range(n)]
            # Clear barrier state so handler threads stop taking tasks and
            # stale deliveries (guarded by the generation counter) no-op.
            self._payloads = None
            self._pending.clear()
            self._not_before.clear()
            self._failure = None

        if failure is not None:
            raise failure
        out: List[Any] = []
        for kind, value in results:
            if kind == "error":
                raise value
            out.append(value)
        return out

    # ------------------------------------------------------------------ #
    # per-worker handler thread
    # ------------------------------------------------------------------ #
    def _serve(self, worker: _WorkerConn) -> None:
        current: Optional[Tuple[int, int]] = None  # (index, barrier gen)
        try:
            while True:
                current = None
                index, gen, payload = self._take_task(worker)
                current = (index, gen)
                # An idle worker's heartbeats queue unread while this
                # thread sits in _take_task (nothing reads the socket),
                # so silence is measured from dispatch, not from the last
                # frame read — otherwise any idle gap longer than the
                # heartbeat window falsely retires a live worker.
                worker.last_seen = time.monotonic()
                _send_frame(worker.sock, ("task", (gen, index), payload),
                            worker.send_lock)
                self._await_result(worker, index, gen)
                worker.tasks_done += 1
        except _PoolStopped:
            pass
        except Exception as exc:
            # Not just (_WorkerGone, ConnectionError, OSError): a corrupt
            # frame (pickle.UnpicklingError) or any other surprise must
            # still retire the worker and requeue its in-flight task, or
            # the barrier blocks forever with no task_timeout set.
            self._retire_worker(worker, current, exc)

    def _take_task(self, worker: _WorkerConn) -> Tuple[int, int, bytes]:
        with self._cond:
            while True:
                if self._stopping or worker.dead:
                    raise _PoolStopped
                if self._payloads is not None and self._pending:
                    now = time.monotonic()
                    for _ in range(len(self._pending)):
                        index = self._pending.popleft()
                        if self._not_before.get(index, 0.0) <= now:
                            return index, self._barrier, self._payloads[index]
                        self._pending.append(index)
                    self._cond.wait(timeout=0.02)  # all are backing off
                else:
                    self._cond.wait(timeout=0.2)

    def _await_result(self, worker: _WorkerConn, index: int,
                      gen: int) -> None:
        ex = self._ex
        deadline = (
            time.monotonic() + ex.task_timeout
            if ex.task_timeout is not None else None
        )
        window = ex.heartbeat_window
        while True:
            now = time.monotonic()
            if deadline is not None and now >= deadline:
                raise _WorkerGone(
                    f"task timed out after {ex.task_timeout:g}s (worker "
                    f"pid {worker.info.get('pid')} presumed hung)"
                )
            silent_for = now - worker.last_seen
            if silent_for > window:
                raise _WorkerGone(
                    f"worker pid {worker.info.get('pid')} missed heartbeats "
                    f"for {silent_for:.1f}s"
                )
            timeout = window - silent_for
            if deadline is not None:
                timeout = min(timeout, deadline - now)
            msg = worker.reader.recv(timeout=max(timeout, 0.05))
            if msg is None:
                continue
            worker.last_seen = time.monotonic()
            kind = msg[0]
            if kind == "heartbeat":
                continue
            if kind == "fetch":
                _send_frame(
                    worker.sock,
                    ("piece", msg[1], ex.piece_cache.payload(msg[1])),
                    worker.send_lock,
                )
                continue
            if kind in ("result", "error"):
                task_id, payload = msg[1], msg[2]
                outcome = self._decode_outcome(kind, payload, msg)
                with self._cond:
                    if (task_id == (gen, index)
                            and gen == self._barrier
                            and index not in self._results):
                        self._results[index] = outcome
                        self._outstanding -= 1
                        self._cond.notify_all()
                return
            raise _WorkerGone(f"unexpected frame kind {kind!r}")

    @staticmethod
    def _decode_outcome(kind: str, payload: Optional[bytes],
                        msg: tuple) -> Tuple[str, Any]:
        if kind == "result":
            return ("ok", pickle.loads(payload))
        if payload is not None:
            try:
                return ("error", pickle.loads(payload))
            except Exception:  # fall through to the repr carried alongside
                pass
        return ("error", RemoteTaskError(
            f"task raised an unpicklable exception on the worker: {msg[3]}"
        ))

    # ------------------------------------------------------------------ #
    # failure handling
    # ------------------------------------------------------------------ #
    def _retire_worker(self, worker: _WorkerConn,
                       current: Optional[Tuple[int, int]],
                       reason: BaseException) -> None:
        with self._cond:
            if worker.dead:
                return
            worker.dead = True
            if worker in self._workers:
                self._workers.remove(worker)
            self._cond.notify_all()
        try:
            worker.sock.close()
        except OSError:  # pragma: no cover - best effort
            pass
        if worker.proc is not None and worker.proc.poll() is None:
            worker.proc.kill()

        backoff = 0.0
        with self._cond:
            if (current is not None and current[1] == self._barrier
                    and self._payloads is not None
                    and current[0] not in self._results):
                index = current[0]
                self._attempts[index] += 1
                attempts = self._attempts[index]
                if attempts > 1 + self._ex.retries:
                    self._failure = RemoteTaskError(
                        f"task {index} failed on {attempts} workers "
                        f"(retries={self._ex.retries} exhausted); last "
                        f"failure: {reason}"
                    )
                else:
                    backoff = min(0.05 * (2 ** (attempts - 1)), 1.0)
                    self._not_before[index] = time.monotonic() + backoff
                    self._pending.append(index)
                self._cond.notify_all()
            barrier_active = self._outstanding > 0 and self._failure is None
            can_respawn = (
                barrier_active
                and not self._stopping
                and self._ex.spawn_workers > 0
                and len(self._workers) < self._ex.spawn_workers
                and self._respawns_left > 0
            )
            if can_respawn:
                self._respawns_left -= 1
        if can_respawn:
            self._spawn_one()

    # ------------------------------------------------------------------ #
    def shutdown(self) -> None:
        with self._cond:
            self._stopping = True
            workers = list(self._workers)
            self._workers.clear()
            self._cond.notify_all()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - best effort
            pass
        for worker in workers:
            worker.dead = True
            try:
                _send_frame(worker.sock, ("shutdown",), worker.send_lock)
            except OSError:
                pass
            try:
                worker.sock.close()
            except OSError:  # pragma: no cover - best effort
                pass
        for proc in self._spawned:
            if proc.poll() is None:
                proc.terminate()
        for proc in self._spawned:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
                proc.wait(timeout=5)


# --------------------------------------------------------------------- #
# the executor
# --------------------------------------------------------------------- #
class RemoteExecutor(Executor):
    """The socket-coordinator backend (``executor="remote"``).

    Parameters
    ----------
    max_workers:
        Target worker count; defaults to ``$REPRO_WORKERS`` or the cpu
        count.  Also the default number of local ``repro worker``
        subprocesses launched (see ``spawn_workers``).
    bind:
        ``HOST:PORT`` the coordinator listens on (default
        ``$REPRO_REMOTE_BIND`` or ``127.0.0.1:0``).  Bind a routable host
        and fixed port to accept workers from other machines.
    spawn_workers:
        Local subprocesses to launch when the pool starts (default
        ``$REPRO_REMOTE_SPAWN`` or ``max_workers``); ``0`` means the
        executor only waits for externally-launched ``repro worker``
        processes.
    task_timeout:
        Seconds one task may run before its worker is presumed hung and
        the task reassigned (default ``$REPRO_REMOTE_TIMEOUT``; unset
        means no timeout).
    retries:
        How many times an infrastructure failure may requeue one task
        (default ``$REPRO_REMOTE_RETRIES`` or 2).  Task exceptions are
        never retried.
    connect_timeout:
        Seconds to wait for the first worker before degrading to the
        ``processes`` backend with a :class:`RemoteDegradedWarning`
        (default ``$REPRO_REMOTE_CONNECT_TIMEOUT`` or 20).
    heartbeat_interval:
        Worker heartbeat period (default ``$REPRO_REMOTE_HEARTBEAT`` or
        1.0); a worker silent for ``max(6×interval, 6s)`` is presumed
        dead.
    cache_min_bytes:
        Piece-cache threshold forwarded to :class:`RemotePieceCache`.
    """

    name = "remote"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        *,
        bind: Optional[str] = None,
        spawn_workers: Optional[int] = None,
        task_timeout: Optional[float] = None,
        retries: Optional[int] = None,
        connect_timeout: Optional[float] = None,
        heartbeat_interval: Optional[float] = None,
        cache_min_bytes: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.max_workers = _default_workers(max_workers)
        self.bind_address = _parse_address(
            bind or os.environ.get(REMOTE_BIND_ENV, "127.0.0.1:0")
        )
        if spawn_workers is None:
            env = os.environ.get(REMOTE_SPAWN_ENV)
            spawn_workers = int(env) if env is not None else self.max_workers
        if spawn_workers < 0:
            raise ValueError(
                f"spawn_workers must be >= 0, got {spawn_workers}"
            )
        self.spawn_workers = int(spawn_workers)
        if task_timeout is None:
            env = os.environ.get(REMOTE_TIMEOUT_ENV)
            task_timeout = float(env) if env else None
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(f"task_timeout must be > 0, got {task_timeout}")
        self.task_timeout = task_timeout
        if retries is None:
            retries = int(os.environ.get(REMOTE_RETRIES_ENV, 2))
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.retries = int(retries)
        if connect_timeout is None:
            connect_timeout = float(
                os.environ.get(REMOTE_CONNECT_TIMEOUT_ENV,
                               _DEFAULT_CONNECT_TIMEOUT)
            )
        self.connect_timeout = float(connect_timeout)
        if heartbeat_interval is None:
            heartbeat_interval = float(
                os.environ.get(REMOTE_HEARTBEAT_ENV, 1.0)
            )
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_window = max(6 * self.heartbeat_interval, 6.0)
        self.piece_cache = RemotePieceCache(min_bytes=cache_min_bytes)
        self.pools_created = 0
        self.fallback_events = 0
        self._pool: Optional[_RemotePool] = None
        self._fallback: Optional[ProcessExecutor] = None

    # ------------------------------------------------------------------ #
    @property
    def address(self) -> Optional[Tuple[str, int]]:
        """The coordinator's bound ``(host, port)``, once listening."""
        return self._pool.address if self._pool is not None else None

    @property
    def n_workers(self) -> int:
        """Currently connected workers (0 before the first barrier)."""
        return self._pool.n_workers if self._pool is not None else 0

    @property
    def degraded(self) -> bool:
        """Whether this executor fell back to the ``processes`` backend."""
        return self._fallback is not None

    # ------------------------------------------------------------------ #
    def start(self) -> Optional[Tuple[str, int]]:
        """Start listening without waiting for workers; return the address.

        The external-worker workflow needs the port *before* any worker
        can be launched, but :meth:`map` only opens the listener on demand
        (and then waits ``connect_timeout`` for someone to appear).
        ``start()`` breaks the cycle::

            ex = RemoteExecutor(spawn_workers=0)
            host, port = ex.start()
            # ... launch `repro worker --connect host:port` anywhere ...
            ex.map(fn, tasks)

        Idempotent; returns ``None`` if the executor already degraded.
        """
        self._ensure_open()
        if self._pool is None and self._fallback is None:
            self._pool = _RemotePool(self)
            self.pools_created += 1
        return self._pool.address if self._pool is not None else None

    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> List[Any]:
        self._ensure_open()
        tasks = list(tasks)
        if not tasks:
            return []
        if self._fallback is not None:
            return self._fallback.map(fn, tasks)
        if len(tasks) <= 1 and self._pool is None:
            # One task gains nothing from a worker fleet, but the pickle
            # contract still holds so behavior is task-count-independent.
            for i, task in enumerate(tasks):
                self._serialize(fn, task, i, cache=None)
            return [fn(t) for t in tasks]
        pool = self._ensure_pool()
        if pool is None:  # degraded while ensuring
            return self._fallback.map(fn, tasks)
        payloads = [
            self._serialize(fn, task, i, cache=self.piece_cache)
            for i, task in enumerate(tasks)
        ]
        try:
            return pool.run_barrier(payloads)
        except WorkerPoolBrokenError:
            self._discard_pool()
            raise

    def _serialize(self, fn, task, index: int,
                   cache: Optional[RemotePieceCache]) -> bytes:
        from repro.dist.executor import UnpicklableTaskError

        try:
            return _dump_task(fn, task, cache)
        except Exception as exc:
            raise UnpicklableTaskError(
                _pickle_advice(f"task {index} ({task!r})", exc)
            ) from exc

    # ------------------------------------------------------------------ #
    def _ensure_pool(self) -> Optional[_RemotePool]:
        if self._pool is None:
            pool = _RemotePool(self)
            self.pools_created += 1
            if not pool.wait_for_workers(1, self.connect_timeout):
                pool.shutdown()
                warnings.warn(
                    f"no remote worker connected to "
                    f"{pool.address[0]}:{pool.address[1]} within "
                    f"{self.connect_timeout:g}s; degrading to the "
                    f"'processes' backend for this executor's lifetime",
                    RemoteDegradedWarning,
                    stacklevel=3,
                )
                self._fallback = ProcessExecutor(max_workers=self.max_workers)
                self.fallback_events += 1
                return None
            self._pool = pool
        return self._pool

    def _discard_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown()

    def close(self) -> None:
        pool, self._pool = self._pool, None
        fallback, self._fallback = self._fallback, None
        if pool is not None:
            pool.shutdown()
        if fallback is not None:
            fallback.close()
        super().close()

    def stats(self) -> Dict[str, Any]:
        """Base executor stats plus the PR 6 degradation seam: whether
        (and how often) this executor fell back to ``processes``, and the
        fallback backend's own stats once it exists — the payload
        ``repro serve`` surfaces on ``GET /statz``."""
        doc = super().stats()
        doc.update({
            "degraded": self.degraded,
            "fallback_events": self.fallback_events,
            "n_workers": self.n_workers,
            "fallback": (self._fallback.stats()
                         if self._fallback is not None else None),
        })
        return doc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self.closed else (
            "degraded" if self._fallback is not None
            else f"{self.n_workers} worker(s)" if self._pool is not None
            else "lazy"
        )
        return f"RemoteExecutor(max_workers={self.max_workers}, {state})"


def _parse_address(text: str) -> Tuple[str, int]:
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"remote address must be HOST:PORT, got {text!r}"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(
            f"remote address must be HOST:PORT with an integer port, "
            f"got {text!r}"
        ) from None


# --------------------------------------------------------------------- #
# fault injection (the chaos hooks tests/chaos.py drives)
# --------------------------------------------------------------------- #
# The hooks themselves moved to repro.dist.faults so the serving layer's
# pool workers can share them without importing the socket machinery;
# the aliases keep this module's historical surface intact.
from repro.dist.faults import claim_latch as _claim_latch  # noqa: E402,F401
from repro.dist.faults import maybe_chaos as _maybe_chaos  # noqa: E402


# --------------------------------------------------------------------- #
# the worker process
# --------------------------------------------------------------------- #
def worker_main(connect: str, tag: Optional[str] = None) -> int:
    """The ``repro worker`` loop: connect, heartbeat, execute, repeat.

    Exits 0 on a clean ``shutdown`` frame or when the coordinator goes
    away (EOF) — a worker must never outlive its coordinator.
    """
    host, port = _parse_address(connect)
    # Workers legitimately race their coordinator's bind (a fleet script
    # starts both concurrently), so a refused connection is retried for a
    # grace window rather than failing on the first attempt.  The window
    # mirrors the coordinator's wait-for-workers knob.
    grace = float(os.environ.get(REMOTE_CONNECT_TIMEOUT_ENV,
                                 _DEFAULT_CONNECT_TIMEOUT))
    deadline = time.monotonic() + grace
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=10.0)
            break
        except OSError as exc:
            if time.monotonic() >= deadline:
                print(f"repro worker: cannot connect to {host}:{port}: "
                      f"{exc}", file=sys.stderr)
                return 1
            time.sleep(0.2)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    send_lock = threading.Lock()
    _send_frame(sock, ("hello", {"pid": os.getpid(), "tag": tag}),
                send_lock)

    interval = float(os.environ.get(REMOTE_HEARTBEAT_ENV, 1.0))
    stop = threading.Event()

    def _beat() -> None:
        while not stop.wait(interval):
            try:
                _send_frame(sock, ("heartbeat", os.getpid()), send_lock)
            except OSError:
                # Coordinator is gone.  The main thread may be deep in a
                # long task (or a chaos hang); do not let this process
                # linger as an orphan.
                os._exit(0)

    threading.Thread(target=_beat, name="repro-worker-heartbeat",
                     daemon=True).start()

    reader = _FrameReader(sock)
    pins: Dict[str, Any] = {}

    def _fetch(digest: str) -> Any:
        if digest in pins:
            return pins[digest]
        _send_frame(sock, ("fetch", digest), send_lock)
        while True:
            msg = reader.recv(timeout=None)
            if msg is None:  # pragma: no cover - blocking recv
                continue
            if msg[0] == "piece" and msg[1] == digest:
                pins[digest] = pickle.loads(msg[2])
                return pins[digest]
            if msg[0] == "shutdown":
                raise ConnectionError("shutdown during fetch")

    tasks_seen = 0
    try:
        while True:
            msg = reader.recv(timeout=None)
            if msg is None:  # pragma: no cover - blocking recv
                continue
            kind = msg[0]
            if kind == "shutdown":
                break
            if kind != "task":
                continue
            task_id, payload = msg[1], msg[2]
            tasks_seen += 1
            _maybe_chaos(tasks_seen)
            try:
                fn, arg = _FetchingUnpickler(
                    io.BytesIO(payload), _fetch
                ).load()
                result = fn(arg)
                _send_frame(
                    sock,
                    ("result", task_id,
                     pickle.dumps(result, _PICKLE_PROTOCOL)),
                    send_lock,
                )
            except ConnectionError:
                raise
            except Exception as exc:
                try:
                    exc_payload = pickle.dumps(exc, _PICKLE_PROTOCOL)
                except Exception:
                    exc_payload = None
                _send_frame(
                    sock, ("error", task_id, exc_payload, repr(exc)),
                    send_lock,
                )
    except ConnectionError:
        pass  # coordinator went away: exit cleanly
    finally:
        stop.set()
        try:
            sock.close()
        except OSError:  # pragma: no cover - best effort
            pass
    return 0
