"""One simulated machine of the simultaneous model.

A machine owns a *piece* — the subgraph of its edges on the full vertex set
``V`` (every machine knows ``V``; only the edge set is partitioned) — plus a
private randomness stream.  Its only action is to run a summarizer over the
piece and emit one :class:`~repro.dist.message.Message`.

The machine enforces the model's honesty constraint at the seam: a message
must be attributed to the machine that produced it.  Summarizers are
arbitrary user code (tests include deliberately dishonest ones), so this is
validated here rather than trusted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

import numpy as np

from repro.dist.message import Message
from repro.graph.edgelist import Graph

__all__ = ["Machine", "Summarizer"]

# summarizer(piece, machine_index, rng, public=...) -> Message
Summarizer = Callable[..., Message]


@dataclass
class Machine:
    """A player of the simultaneous protocol.

    Parameters
    ----------
    index:
        The machine's id in ``0..k-1``.
    piece:
        The machine's subgraph ``G^(i)`` (on the full vertex set).
    rng:
        The machine's private generator, derived by the engine from the
        protocol seed so runs are reproducible machine by machine.
    """

    index: int
    piece: Graph
    rng: np.random.Generator

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"machine index must be non-negative, got {self.index}")

    def summarize(
        self, summarizer: Summarizer, public: Optional[Any] = None
    ) -> Message:
        """Run ``summarizer`` on this machine's piece and validate the result.

        ``public`` is the shared public-randomness object (or ``None``); it
        is passed through to the summarizer unchanged.
        """
        message = summarizer(self.piece, self.index, self.rng, public=public)
        if not isinstance(message, Message):
            raise TypeError(
                f"summarizer must return a Message, got {type(message).__name__}"
            )
        if message.sender != self.index:
            raise ValueError(
                f"message sender {message.sender} does not match machine "
                f"index {self.index}"
            )
        return message
