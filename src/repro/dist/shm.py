"""Zero-copy piece transfer: shared-memory edge segments and their handles.

The ``processes`` executor pickles every task into a worker — for a graph
piece that means serializing the edge array in the parent, shipping the
bytes through a pipe, and materializing a copy in the worker, every round.
For the stock benchmark sizes that serialization rivals the per-machine
compute itself.  :class:`SharedEdgeStore` removes it: the parent writes a
partition's edge arrays into **one** ``multiprocessing.shared_memory``
segment (or a memory-mapped temp file where POSIX shared memory is
unavailable), ships only lightweight :class:`EdgeHandle` records —
``(backend, name, offset, rows)`` plus graph metadata — and workers
reconstruct read-only numpy views *in place*, no copy on either side.

Determinism is untouched: a reconstructed view is bit-identical to the
array that was stored (covered by ``tests/test_dist_shm.py``), so
``transfer="shared"`` composes with every executor backend under the same
per-seed contract as pickled transfer (``docs/PARALLELISM.md`` §6).

Lifecycle
---------
The *owner* (the engine that built the store) unlinks all segments in
:meth:`SharedEdgeStore.close` — stores are context managers and engines
close them right after the barrier, when every worker result has already
been collected.  Workers attach per task via :func:`open_edges` /
:func:`open_graph`; attachment lifetime is reference-counted through the
numpy base chain, so a worker's mapping disappears when its last view
dies — normally at the end of the task, or exactly as late as a result
that aliases the piece requires.  If the owner dies without closing, the
interpreter's resource tracker reclaims shm segments and the OS reclaims
temp files — a worker crash therefore cannot leak segments past the
owning process.

Selection
---------
``resolve_transfer`` mirrors ``resolve_executor``: explicit argument wins,
then ``$REPRO_TRANSFER``, default ``"pickle"``.  The segment backend
follows ``$REPRO_SHM_BACKEND`` (``shm`` where available, else ``mmap``).
"""

from __future__ import annotations

import os
import tempfile
import threading
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.graph.edgelist import Graph

try:  # pragma: no cover - always present on CPython >= 3.8
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic platforms only
    _shared_memory = None

__all__ = [
    "SHM_BACKEND_ENV",
    "TRANSFER_ENV",
    "AttachedEdges",
    "EdgeHandle",
    "SharedEdgeStore",
    "SharedPartitionView",
    "SharedStoreClosedError",
    "available_transfer_modes",
    "open_edges",
    "open_graph",
    "resolve_transfer",
]

#: Environment variable selecting the default piece-transfer mode
#: (``pickle`` if unset; ``shared`` enables the zero-copy path).
TRANSFER_ENV = "REPRO_TRANSFER"
#: Environment variable forcing the segment backend (``shm`` or ``mmap``).
SHM_BACKEND_ENV = "REPRO_SHM_BACKEND"

_EDGE_DTYPE = np.int64
_ROW_BYTES = 2 * np.dtype(_EDGE_DTYPE).itemsize


class SharedStoreClosedError(RuntimeError):
    """A :class:`SharedEdgeStore` was used after :meth:`~SharedEdgeStore.close`."""


def available_transfer_modes() -> tuple:
    """The piece-transfer modes engines accept, in preference order."""
    return ("pickle", "shared")


def resolve_transfer(mode: Optional[str] = None) -> str:
    """Resolve a transfer mode: explicit argument, ``$REPRO_TRANSFER``,
    default ``"pickle"``."""
    if mode is None:
        mode = os.environ.get(TRANSFER_ENV, "pickle")
    name = str(mode).strip().lower()
    if name not in available_transfer_modes():
        raise ValueError(
            f"unknown transfer mode {mode!r}; available: "
            f"{', '.join(available_transfer_modes())}"
        )
    return name


def _default_backend() -> str:
    env = os.environ.get(SHM_BACKEND_ENV)
    if env:
        name = env.strip().lower()
        if name not in ("shm", "mmap"):
            raise ValueError(
                f"${SHM_BACKEND_ENV} must be 'shm' or 'mmap', got {env!r}"
            )
        if name == "shm" and _shared_memory is None:  # pragma: no cover
            raise ValueError(
                "shared_memory is unavailable on this platform; "
                f"set ${SHM_BACKEND_ENV}=mmap"
            )
        return name
    return "shm" if _shared_memory is not None else "mmap"


# --------------------------------------------------------------------- #
# handles
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class EdgeHandle:
    """A picklable pointer to one edge array inside a shared segment.

    This is what crosses the process boundary instead of the array: a few
    scalars, regardless of how many edges the piece holds.  ``sides``
    carries the bipartition (``n_left``, ``n_right``) when the piece came
    from a :class:`~repro.graph.bipartite.BipartiteGraph`, so
    :func:`open_graph` reconstructs the right graph type.
    """

    backend: str                       # "shm" | "mmap"
    name: str                          # segment name or temp-file path
    offset: int                        # byte offset into the segment
    n_rows: int                        # number of edges at that offset
    n_vertices: int = 0                # vertex count for graph rebuilding
    sides: Optional[Tuple[int, int]] = None  # (n_left, n_right) if bipartite

    @property
    def nbytes(self) -> int:
        """Payload size in bytes (``16 * n_rows``)."""
        return self.n_rows * _ROW_BYTES


class AttachedEdges:
    """A worker-side attachment: a read-only mapped view of one edge array.

    Lifetime is reference-counted, not explicitly closed: the mapping is
    owned by the numpy base chain (the ``mmap`` object under ``array``),
    so it is unmapped exactly when the last view dies — whether that is
    at :meth:`release`, or later because the task's *result* aliased the
    piece.  An explicit ``close()`` would be unsound here: numpy holds a
    raw pointer without a registered buffer export, so closing a mapping
    that a live result still views would not fail loudly, it would
    segfault the worker.
    """

    def __init__(self, array: np.ndarray) -> None:
        self.array: Optional[np.ndarray] = array

    def graph(self, handle: EdgeHandle) -> Graph:
        """Reconstruct the piece as a read-only graph view (no copy)."""
        assert self.array is not None, "attachment already released"
        if handle.sides is not None:
            n_left, n_right = handle.sides
            return BipartiteGraph(n_left, n_right, self.array, validated=True)
        return Graph.from_canonical_edges(handle.n_vertices, self.array)

    def release(self) -> None:
        """Drop this attachment's reference to the mapping.

        The segment is unmapped as soon as no other array references it;
        results that alias the piece keep it alive exactly as long as
        they need it.
        """
        self.array = None


def open_edges(handle: EdgeHandle) -> AttachedEdges:
    """Attach to a handle's segment and map its edge array (read-only)."""
    if handle.n_rows == 0:
        empty = np.zeros((0, 2), dtype=_EDGE_DTYPE)
        empty.setflags(write=False)
        return AttachedEdges(empty)
    if handle.backend == "shm":
        if _shared_memory is None:  # pragma: no cover - exotic platforms
            raise RuntimeError("shared_memory unavailable; cannot attach")
        seg = _attach_untracked(handle.name)
        # Build the view directly over the mmap object so numpy's base ref
        # keeps the mapping alive, then neuter the SharedMemory wrapper:
        # its close()/__del__ would munmap under the view (numpy keeps a
        # raw pointer, not a tracked buffer export).  The duplicate fd can
        # go immediately — a POSIX mapping outlives its descriptor.
        mapping = seg._mmap
        arr = np.ndarray(
            (handle.n_rows, 2), dtype=_EDGE_DTYPE,
            buffer=mapping, offset=handle.offset,
        )
        arr.setflags(write=False)
        try:
            seg._buf.release()
        except (AttributeError, BufferError):  # pragma: no cover
            pass
        seg._buf = None
        seg._mmap = None
        fd = getattr(seg, "_fd", -1)
        if fd >= 0:
            try:
                os.close(fd)
            except OSError:  # pragma: no cover - already closed
                pass
            seg._fd = -1
        return AttachedEdges(arr)
    if handle.backend == "mmap":
        arr = np.memmap(
            handle.name, dtype=_EDGE_DTYPE, mode="r",
            offset=handle.offset, shape=(handle.n_rows, 2),
        )
        return AttachedEdges(arr)
    raise ValueError(f"unknown shared-store backend {handle.backend!r}")


_ATTACH_LOCK = threading.Lock()


def _attach_untracked(name: str):
    """Attach to an existing segment without resource-tracker registration.

    Tracking belongs to the *owner*: it registered the segment at creation
    and unregisters at unlink.  Before Python 3.13 an attach registers
    again — and a pool worker forked before the first segment existed has
    no inherited tracker, so that registration spawns a private tracker
    per worker which later "cleans up" the already-unlinked name and warns
    at exit.  3.13+ exposes ``track=False`` for exactly this; earlier
    versions get the registration no-op'd for the duration of the attach
    (serialized by a lock: the patch is process-global state).
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        pass
    from multiprocessing import resource_tracker

    with _ATTACH_LOCK:
        original = resource_tracker.register
        suffix = name.lstrip("/")

        def _register_except_attached(reg_name, rtype,
                                      _original=original, _suffix=suffix):
            # Drop only the attach's own registration; a *create* on
            # another thread during this window (its own segment, so a
            # different name) must still reach the tracker — it is the
            # crash-cleanup backstop for that owner.
            if rtype == "shared_memory" and str(reg_name).lstrip("/") == _suffix:
                return None
            return _original(reg_name, rtype)

        resource_tracker.register = _register_except_attached
        try:
            return _shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def open_graph(handle: EdgeHandle) -> Tuple[Graph, AttachedEdges]:
    """Attach to a handle and reconstruct its read-only graph view."""
    attachment = open_edges(handle)
    return attachment.graph(handle), attachment


# --------------------------------------------------------------------- #
# the owner-side store
# --------------------------------------------------------------------- #
class SharedEdgeStore:
    """Owner of shared edge segments: put arrays in, hand out handles.

    One :meth:`put_arrays` call packs any number of edge arrays into a
    single segment (one allocation, one handle family); :meth:`put_pieces`
    does the same for a partitioned graph, carrying the vertex metadata
    workers need to rebuild :class:`~repro.graph.edgelist.Graph` views.

    The store is a context manager; :meth:`close` unlinks every segment it
    created and is idempotent.  ``put_*`` after ``close`` raises
    :class:`SharedStoreClosedError`.
    """

    def __init__(self, backend: Optional[str] = None) -> None:
        self.backend = _default_backend() if backend is None else backend
        if self.backend not in ("shm", "mmap"):
            raise ValueError(
                f"backend must be 'shm' or 'mmap', got {self.backend!r}"
            )
        self._segments: List[Any] = []   # SharedMemory objects or file paths
        self._closed = False

    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "SharedEdgeStore":
        self._ensure_open()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise SharedStoreClosedError(
                "SharedEdgeStore has been closed; its segments are gone — "
                "create a new store to share more arrays"
            )

    # ------------------------------------------------------------------ #
    def put_arrays(
        self,
        arrays: Sequence[np.ndarray],
        n_vertices: int = 0,
        sides: Optional[Tuple[int, int]] = None,
    ) -> List[EdgeHandle]:
        """Copy ``(m_i, 2)`` edge arrays into one shared segment.

        This is the single copy the transfer ever makes: workers map the
        segment directly.  Returns one :class:`EdgeHandle` per input array,
        in order.  Empty arrays get a zero-row handle with no backing
        segment at all.
        """
        self._ensure_open()
        normalized = [self._as_edge_array(a) for a in arrays]
        total = sum(a.nbytes for a in normalized)
        handles: List[EdgeHandle] = []
        if total == 0:
            return [
                EdgeHandle(self.backend, "", 0, 0, n_vertices, sides)
                for _ in normalized
            ]
        name, buf = self._new_segment(total)
        offset = 0
        for arr in normalized:
            if arr.nbytes:
                view = np.ndarray(arr.shape, dtype=_EDGE_DTYPE,
                                  buffer=buf, offset=offset)
                np.copyto(view, arr)
            handles.append(
                EdgeHandle(self.backend, name, offset, arr.shape[0],
                           n_vertices, sides)
            )
            offset += arr.nbytes
        if self.backend == "mmap":
            buf.flush()
        return handles

    def put_edges(self, edges: np.ndarray, n_vertices: int = 0,
                  sides: Optional[Tuple[int, int]] = None) -> EdgeHandle:
        """Share a single edge array (see :meth:`put_arrays`)."""
        return self.put_arrays([edges], n_vertices, sides)[0]

    def put_graph(self, graph: Graph) -> EdgeHandle:
        """Share one graph's canonical edge array, with its metadata."""
        return self.put_edges(graph.edges, graph.n_vertices,
                              self._graph_sides(graph))

    def put_pieces(self, partition: Any) -> List[EdgeHandle]:
        """Share every piece of a partitioned graph in one segment.

        Uses :meth:`~repro.graph.partition.PartitionedGraph.piece_edge_arrays`
        (one vectorized pass over the whole edge list) when the partition
        provides it, falling back to per-piece materialization otherwise
        (e.g. the overlapping pieces of a vertex partition).
        """
        graph = partition.graph
        if hasattr(partition, "piece_edge_arrays"):
            arrays = partition.piece_edge_arrays()
        else:
            arrays = [partition.piece(i).edges for i in range(partition.k)]
        return self.put_arrays(arrays, graph.n_vertices,
                               self._graph_sides(graph))

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Unlink every segment this store created.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        segments, self._segments = self._segments, []
        for seg in segments:
            if isinstance(seg, str):  # mmap temp file
                try:
                    os.unlink(seg)
                except OSError:  # pragma: no cover - already gone
                    pass
            else:  # SharedMemory
                # Unlink before close: unlinking needs no buffer release, so
                # the segment is reclaimed even if a caller still holds a
                # view (existing mappings stay valid until they are dropped).
                try:
                    seg.unlink()
                except OSError:  # pragma: no cover - already gone
                    pass
                try:
                    seg.close()
                except BufferError:
                    # A live view (e.g. a serial-path result aliasing the
                    # segment) still exports the buffer; process exit will
                    # finish the close.
                    pass

    # ------------------------------------------------------------------ #
    def _new_segment(self, size: int) -> Tuple[str, Any]:
        """Allocate a segment of ``size`` bytes; returns (name, buffer)."""
        if self.backend == "shm":
            seg = _shared_memory.SharedMemory(create=True, size=size)
            self._segments.append(seg)
            return seg.name, seg.buf
        fd, path = tempfile.mkstemp(prefix="repro-edges-", suffix=".bin")
        os.close(fd)
        self._segments.append(path)
        buf = np.memmap(path, dtype=np.uint8, mode="w+", shape=(size,))
        return path, buf

    @staticmethod
    def _as_edge_array(edges: np.ndarray) -> np.ndarray:
        arr = np.ascontiguousarray(edges, dtype=_EDGE_DTYPE)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError(
                f"edge arrays must have shape (m, 2), got {arr.shape}"
            )
        return arr

    @staticmethod
    def _graph_sides(graph: Graph) -> Optional[Tuple[int, int]]:
        if isinstance(graph, BipartiteGraph):
            return (graph.n_left, graph.n_right)
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else f"{len(self._segments)} segment(s)"
        return f"SharedEdgeStore(backend={self.backend!r}, {state})"


class SharedPartitionView:
    """A partitioned graph whose pieces are *pinned* in shared memory.

    :func:`~repro.dist.coordinator.run_simultaneous` with
    ``transfer="shared"`` packs the partition into a fresh segment on
    every call — correct, but the pack (sort + copy) then dominates the
    per-barrier overhead.  Pieces never change between barriers over the
    same partition, so this view pays the pack **once** and exposes the
    resulting :attr:`piece_handles` for every subsequent run; engines
    that find handles on their partition skip packing entirely and ship
    only the handles.  Pair it with a persistent executor to amortize
    both pool start-up and piece serialization across a whole sweep::

        with ProcessExecutor(8) as pool, SharedPartitionView(part) as shared:
            for seed in seeds:
                run_simultaneous(proto, shared, seed, executor=pool,
                                 transfer="shared")

    The view satisfies the partitioned-graph protocol (``graph``, ``k``,
    ``piece``) by delegation, so it drops into any ``partition=`` seat —
    including ``transfer="pickle"`` paths, which simply ignore the
    handles.
    """

    def __init__(self, partition: Any,
                 store: Optional[SharedEdgeStore] = None) -> None:
        self._owns_store = store is None
        self.store = SharedEdgeStore() if store is None else store
        self.partition = partition
        self.graph: Graph = partition.graph
        self.k: int = partition.k
        self.piece_handles: List[EdgeHandle] = self.store.put_pieces(partition)

    def piece(self, i: int) -> Graph:
        """Parent-side piece materialization (delegates to the partition)."""
        return self.partition.piece(i)

    @property
    def closed(self) -> bool:
        return self.store.closed

    def close(self) -> None:
        """Release the pinned segment (only if this view created the store)."""
        if self._owns_store:
            self.store.close()

    def __enter__(self) -> "SharedPartitionView":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SharedPartitionView(k={self.k}, "
                f"n_edges={self.graph.n_edges}, store={self.store!r})")
