"""The single message a machine sends to the coordinator.

In the simultaneous model each machine speaks exactly once, so the whole
information content of a protocol is captured by one :class:`Message` per
machine.  The paper's coresets send two kinds of payload — a subgraph (the
matching coreset, the VC residual) and a fixed vertex set (the VC peeled
vertices) — plus, for some baselines and extensions, a few auxiliary bits
(weight classes, counters).  A message carries all three and knows its own
exact bit cost under the standard encoding of :mod:`repro.utils.bits`.

Messages are immutable: their arrays are canonicalized to read-only int64
so a ledger or a combiner can hold references without defensive copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.utils.bits import BitCost

__all__ = ["Message"]


def _as_edge_array(edges: np.ndarray | Sequence | None) -> np.ndarray:
    if edges is None:
        arr = np.zeros((0, 2), dtype=np.int64)
    else:
        arr = np.asarray(edges, dtype=np.int64)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"edges must have shape (m, 2), got {arr.shape}")
    arr = np.ascontiguousarray(arr)
    arr.setflags(write=False)
    return arr


def _as_vertex_array(vertices: np.ndarray | Sequence | None) -> np.ndarray:
    if vertices is None:
        arr = np.zeros(0, dtype=np.int64)
    else:
        arr = np.asarray(vertices, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(
            f"fixed_vertices must have shape (s,), got shape {arr.shape}"
        )
    arr = np.ascontiguousarray(arr)
    arr.setflags(write=False)
    return arr


@dataclass(frozen=True)
class Message:
    """One machine's message: edges + fixed vertices + auxiliary bits.

    Parameters
    ----------
    sender:
        Index of the machine that produced this message.  The engine rejects
        messages whose sender does not match the machine that emitted them
        (a protocol cannot impersonate another player).
    edges:
        ``(m, 2)`` int64 edge array, or ``None`` for no edges.  Endpoint
        *range* is deliberately not validated here — a message does not know
        ``n``; the coordinator's union (or the ledger's bit accounting)
        applies the graph-level checks.
    fixed_vertices:
        1-D int64 array of vertex ids forming a fixed partial solution
        (e.g. the VC coreset's peeled vertices), or ``None``.
    aux_bits:
        Non-negative count of extra payload bits beyond edges and vertices
        (weight classes, flags, counters).
    """

    sender: int
    edges: np.ndarray = field(default=None)  # type: ignore[assignment]
    fixed_vertices: np.ndarray = field(default=None)  # type: ignore[assignment]
    aux_bits: int = 0

    def __post_init__(self) -> None:
        if self.sender < 0:
            raise ValueError(f"sender must be non-negative, got {self.sender}")
        if self.aux_bits < 0:
            raise ValueError(
                f"aux_bits must be non-negative, got {self.aux_bits}"
            )
        object.__setattr__(self, "edges", _as_edge_array(self.edges))
        object.__setattr__(
            self, "fixed_vertices", _as_vertex_array(self.fixed_vertices)
        )
        object.__setattr__(self, "aux_bits", int(self.aux_bits))

    # ------------------------------------------------------------------ #
    @property
    def n_edges(self) -> int:
        """Number of edges in the message."""
        return int(self.edges.shape[0])

    @property
    def n_fixed_vertices(self) -> int:
        """Number of fixed-solution vertex ids in the message."""
        return int(self.fixed_vertices.shape[0])

    def cost(self) -> BitCost:
        """The itemized cost: edge count, vertex count, auxiliary bits."""
        return BitCost(
            edge_count=self.n_edges,
            vertex_count=self.n_fixed_vertices,
            aux_bits=self.aux_bits,
        )

    def bit_size(self, n_vertices: int) -> int:
        """Exact size in bits when the underlying graph has ``n_vertices``."""
        return self.cost().total_bits(n_vertices)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Message(sender={self.sender}, n_edges={self.n_edges}, "
            f"n_fixed_vertices={self.n_fixed_vertices}, "
            f"aux_bits={self.aux_bits})"
        )
