"""The simultaneous-protocol engine.

A protocol in the paper's model is fully described by three pieces of code
(:class:`SimultaneousProtocol`):

* a **summarizer** run independently on every machine's piece, producing
  that machine's single :class:`~repro.dist.message.Message`;
* a **combine** step run by the coordinator over the k collected messages;
* optionally a **public_setup** sampling shared public randomness (e.g. the
  Remark 5.8 vertex grouping) that every machine sees identically.

:func:`run_simultaneous` executes a protocol over a partitioned graph: it
derives one independent generator per machine (plus one for the public
setup) from a single seed, collects one message per machine, charges every
message to the :class:`~repro.dist.ledger.CommunicationLedger`, and hands
the messages to the coordinator.  Given the same seed and partition the
whole run is bit-identical — the reproducibility contract every experiment
relies on.  The per-machine work can run serially, on a thread pool, or on
a process pool (:mod:`repro.dist.executor`) without changing a single
output bit: machines are composed in index order, never completion order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generic, List, Optional, Protocol as TypingProtocol, TypeVar

import numpy as np

from repro.dist.executor import Executor, ExecutorSpec, resolve_executor
from repro.dist.ledger import CommunicationLedger
from repro.dist.machine import Machine, Summarizer
from repro.dist.message import Message
from repro.graph.bipartite import BipartiteGraph
from repro.graph.edgelist import Graph
from repro.utils.rng import RandomState, spawn_generators

__all__ = [
    "Coordinator",
    "ProtocolResult",
    "SimultaneousProtocol",
    "run_simultaneous",
]

T = TypeVar("T")


class _Partitioned(TypingProtocol):
    """Anything that splits a graph into k machine pieces.

    Satisfied by :class:`~repro.graph.partition.PartitionedGraph` (the
    paper's random edge partitioning) and
    :class:`~repro.graph.partition.VertexPartitionedGraph` (the §1.3
    vertex-partition model of [10]) alike.
    """

    graph: Graph
    k: int

    def piece(self, i: int) -> Graph: ...


@dataclass
class Coordinator:
    """The coordinator's view: the vertex set and an optional template.

    The coordinator knows ``V`` (so ``n_vertices``) but not ``E``.  The
    ``template`` carries graph *metadata* the model makes public — in
    particular the bipartition, which algorithms like Hopcroft–Karp and
    König need — never the edges themselves.
    """

    n_vertices: int
    template: Optional[Graph] = None

    def __post_init__(self) -> None:
        if self.n_vertices < 0:
            raise ValueError(
                f"n_vertices must be non-negative, got {self.n_vertices}"
            )
        if self.template is not None and self.template.n_vertices != self.n_vertices:
            raise ValueError(
                f"template has {self.template.n_vertices} vertices, "
                f"expected {self.n_vertices}"
            )

    # ------------------------------------------------------------------ #
    def union_graph(self, messages: List[Message]) -> Graph:
        """The union of all message edge sets, as a graph on ``V``.

        Dispatches on the template: a bipartite template yields a
        :class:`~repro.graph.bipartite.BipartiteGraph` with the same side
        split, so side-aware algorithms keep working downstream.  Edge
        endpoints are range-checked — a message naming vertices outside
        ``V`` is a protocol violation, not a silent truncation.
        """
        if messages:
            stacked = np.vstack([m.edges for m in messages])
        else:
            stacked = np.zeros((0, 2), dtype=np.int64)
        if isinstance(self.template, BipartiteGraph):
            return BipartiteGraph(
                self.template.n_left, self.template.n_right, stacked
            )
        return Graph(self.n_vertices, stacked)

    @staticmethod
    def fixed_vertices(messages: List[Message]) -> np.ndarray:
        """The sorted union of all fixed-vertex sets across messages."""
        parts = [m.fixed_vertices for m in messages if m.n_fixed_vertices]
        if not parts:
            return np.zeros(0, dtype=np.int64)
        return np.unique(np.concatenate(parts))


@dataclass
class SimultaneousProtocol(Generic[T]):
    """A complete protocol description for the simultaneous model.

    Parameters
    ----------
    name:
        Display name (used by experiment tables and reprs).
    summarizer:
        ``summarizer(piece, machine_index, rng, public=...) -> Message``;
        run once per machine on its piece with its private generator.
    combine:
        ``combine(coordinator, messages) -> T``; the coordinator's
        composition step over all k messages.
    public_setup:
        Optional ``public_setup(graph, k, rng) -> object`` sampling public
        randomness shared by all machines.  It receives the full graph
        object, but the model only permits it to use *public* knowledge
        (``n``, the bipartition, k) plus the public coin flips in ``rng``.
    """

    name: str
    summarizer: Summarizer
    combine: Callable[[Coordinator, List[Message]], T]
    public_setup: Optional[Callable[[Graph, int, np.random.Generator], Any]] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimultaneousProtocol({self.name!r})"


@dataclass
class ProtocolResult(Generic[T]):
    """The outcome of one protocol execution."""

    output: T
    messages: List[Message] = field(default_factory=list)
    ledger: CommunicationLedger = None  # type: ignore[assignment]

    @property
    def total_bits(self) -> int:
        """Total communication of the run, in bits."""
        return self.ledger.total_bits()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProtocolResult(messages={len(self.messages)}, "
            f"total_bits={self.total_bits})"
        )


def _summarize_machine(task: tuple) -> Message:
    """Run one machine's summarizer; the unit of work an executor ships.

    Module-level on purpose: the ``processes`` backend pickles this function
    (and its task tuple) into a worker, which a closure could not survive.
    """
    index, piece, gen, summarizer, public = task
    machine = Machine(index=index, piece=piece, rng=gen)
    return machine.summarize(summarizer, public)


def _summarize_machine_shared(task: tuple) -> Message:
    """The zero-copy twin of :func:`_summarize_machine`.

    The task carries an :class:`~repro.dist.shm.EdgeHandle` instead of the
    piece itself; the worker maps the shared segment, rebuilds a read-only
    graph view in place, and releases the attachment once the message —
    which never aliases the segment unless the summarizer echoes its piece
    — has been produced.
    """
    from repro.dist.shm import open_graph

    index, handle, gen, summarizer, public = task
    piece, attachment = open_graph(handle)
    try:
        message = Machine(index=index, piece=piece, rng=gen).summarize(
            summarizer, public
        )
    finally:
        # Drop the piece with the attachment: the mapping's lifetime is
        # reference-counted, so the segment unmaps here unless the message
        # itself aliases the piece — in which case it lives exactly as
        # long as the result needs it.
        del piece
        attachment.release()
    return message


def run_simultaneous(
    protocol: SimultaneousProtocol[T],
    partition: _Partitioned,
    rng: RandomState = None,
    executor: ExecutorSpec = None,
    transfer: Optional[str] = None,
) -> ProtocolResult[T]:
    """Execute ``protocol`` over a partitioned graph.

    Randomness discipline: a single ``rng`` seed fans out into ``k + 1``
    independent streams — one per machine (private coins) plus one for the
    public setup (public coins) — via SeedSequence spawning, so the same
    seed reproduces the run bit for bit regardless of machine count or
    execution order.

    ``executor`` selects how the k machines run (``"serial"``,
    ``"threads"``, ``"processes"``, an :class:`~repro.dist.executor.Executor`
    instance, or ``None`` for ``$REPRO_EXECUTOR``/serial).  Machine work is
    submitted and collected in machine-index order, the ledger is charged
    after the barrier in that same order, and the public setup and the
    combine step always run in the calling process — so every backend
    yields bit-identical results for the same seed (the contract documented
    in ``docs/PARALLELISM.md``).  The ``processes`` backend additionally
    requires the summarizer to be picklable.

    ``transfer`` selects how pieces reach the machines: ``"pickle"``
    (serialized into each task — the default) or ``"shared"`` (edge arrays
    are written once into a :class:`~repro.dist.shm.SharedEdgeStore`
    segment and workers map read-only views in place, skipping per-task
    serialization).  ``None`` resolves from ``$REPRO_TRANSFER``.  Outputs
    are bit-identical across transfer modes; an ephemeral store is closed
    right after the barrier.  Passing a
    :class:`~repro.dist.shm.SharedPartitionView` as ``partition`` skips
    even the per-call pack: its pinned handles are reused across runs
    (the caller closes the view when the sweep ends).

    An executor resolved here (by name or from the environment) is closed
    before returning; a passed-in :class:`~repro.dist.executor.Executor`
    instance is left open so callers can amortize one pool across many
    runs (``docs/PARALLELISM.md`` §6).
    """
    from repro.dist.shm import SharedEdgeStore, resolve_transfer

    graph = partition.graph
    k = partition.k
    gens = spawn_generators(rng, k + 1)
    backend = resolve_executor(executor)
    owns_backend = not isinstance(executor, Executor)
    mode = resolve_transfer(transfer)

    try:
        public = (
            protocol.public_setup(graph, k, gens[k])
            if protocol.public_setup is not None
            else None
        )

        if mode == "shared":
            # A SharedPartitionView already pinned its pieces in a segment;
            # reuse those handles (the pay-once path).  Anything else gets
            # an ephemeral store that lives exactly as long as the barrier.
            pinned = getattr(partition, "piece_handles", None)
            if pinned is not None:
                tasks = [
                    (i, pinned[i], gens[i], protocol.summarizer, public)
                    for i in range(k)
                ]
                messages: List[Message] = backend.map(
                    _summarize_machine_shared, tasks
                )
            else:
                with SharedEdgeStore() as store:
                    handles = store.put_pieces(partition)
                    tasks = [
                        (i, handles[i], gens[i], protocol.summarizer, public)
                        for i in range(k)
                    ]
                    messages = backend.map(_summarize_machine_shared, tasks)
        else:
            tasks = [
                (i, partition.piece(i), gens[i], protocol.summarizer, public)
                for i in range(k)
            ]
            messages = backend.map(_summarize_machine, tasks)
    finally:
        if owns_backend:
            backend.close()

    ledger = CommunicationLedger(n_vertices=max(graph.n_vertices, 1), k=k)
    for message in messages:
        ledger.record(message)

    coordinator = Coordinator(
        n_vertices=graph.n_vertices, template=_metadata_template(graph)
    )
    output = protocol.combine(coordinator, messages)
    return ProtocolResult(output=output, messages=messages, ledger=ledger)


def _metadata_template(graph: Graph) -> Graph:
    """An edge-free copy of ``graph`` carrying only public metadata.

    The coordinator may know ``n`` and the bipartition but must never see
    the input edges except through messages; handing it the full graph
    would let a buggy combine step read the input for free, invisibly to
    the ledger.
    """
    if isinstance(graph, BipartiteGraph):
        return BipartiteGraph(graph.n_left, graph.n_right)
    return Graph(graph.n_vertices)
