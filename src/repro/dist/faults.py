"""Env-triggered fault injection shared by every worker loop.

The chaos hooks started life inside :mod:`repro.dist.remote` (PR 6): a
``repro worker`` process checks a handful of ``REPRO_CHAOS_*`` variables
once per task and misbehaves on cue — exit hard, hang, or stall — so the
fault-injection suite (``tests/chaos.py``) can prove the coordinator's
failure paths with *real* process deaths instead of mocks.  The serving
layer (:mod:`repro.serve`) runs its solve tasks on pool workers that need
exactly the same hooks, so they live here, importable without dragging in
the remote executor's socket machinery.

Protocol (all read from ``os.environ`` at task time, so pool workers
inherit whatever the test armed before the pool was spawned):

``REPRO_CHAOS_KILL``
    ``os._exit(REPRO_CHAOS_EXIT or 17)`` before executing the task.
``REPRO_CHAOS_HANG``
    sleep ``REPRO_CHAOS_HANG_S`` (default: effectively forever) instead.
``REPRO_CHAOS_SLOW_MS``
    merely delay the task by that many milliseconds.
``REPRO_CHAOS_AFTER``
    arm the hook from the Nth task this worker executes (default 1).
``REPRO_CHAOS_LATCH``
    a path claimed with ``O_CREAT | O_EXCL``: exactly one process fires
    the fault, exactly once; everyone else runs clean.
"""

from __future__ import annotations

import os
import time

__all__ = ["claim_latch", "maybe_chaos"]

_CHAOS_VARS = ("REPRO_CHAOS_KILL", "REPRO_CHAOS_HANG", "REPRO_CHAOS_SLOW_MS")


def claim_latch(path: str) -> bool:
    """Atomically claim the chaos latch; only the claimant misbehaves."""
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.write(fd, str(os.getpid()).encode())
    os.close(fd)
    return True


def maybe_chaos(task_seq: int) -> None:
    """Env-triggered fault injection, run before each task executes.

    ``task_seq`` is 1-based: the caller counts the tasks *this process*
    has been handed.  With none of the chaos variables set this is three
    dict lookups — cheap enough to sit on every task path unconditionally.
    """
    env = os.environ
    if not any(v in env for v in _CHAOS_VARS):
        return
    if task_seq < int(env.get("REPRO_CHAOS_AFTER", "1")):
        return
    latch = env.get("REPRO_CHAOS_LATCH")
    if latch is not None and not claim_latch(latch):
        return
    slow = env.get("REPRO_CHAOS_SLOW_MS")
    if slow:
        time.sleep(int(slow) / 1000.0)
    if env.get("REPRO_CHAOS_HANG"):
        time.sleep(float(env.get("REPRO_CHAOS_HANG_S", "3600")))
    if env.get("REPRO_CHAOS_KILL"):
        os._exit(int(env.get("REPRO_CHAOS_EXIT", "17")))
