"""Longitudinal perf/quality trend tracking across commits.

The registry archives runs (:mod:`repro.experiments.artifacts`) and the
bench writes ``BENCH_*.json`` snapshots (:mod:`repro.experiments.bench`),
both stamped with git provenance.  This module turns a directory of those
files — accumulated across commits, by CI uploads or a committed results
directory — into per-metric *series* keyed by ``(experiment, metric,
commit)``, and evaluates the newest commit against the previous one under
configurable thresholds: a **perf** metric (wall-clock seconds) that got
more than ``perf_tol`` slower, or a **quality** metric (approximation
ratio, where higher is further from optimal) that got more than
``quality_tol`` worse, is flagged.  ``repro report --trend DIR --check``
exits 1 when anything is flagged, which is what makes the trajectory a CI
gate rather than a chart.

Metric classification is by name, one rule for every producer:

- ``perf`` — the metric's last path component ends in ``_s`` /
  ``_seconds`` or contains ``wall`` or ``time`` (``per_round_s``,
  ``wall_s``, ``optimized_s``, ...).  Regression = increase.
- ``quality`` — the last component contains ``ratio`` (``ratio_mean``,
  ``weight_ratio``, ...; every ratio in this repo is opt-vs-achieved or
  reference-vs-protocol, so higher means further from optimal).
  Regression = increase.
- ``info`` — everything else: tracked and rendered, never flagged.

Artifacts of one experiment whose *params* differ (different sweep cells,
say) are split into separate series labelled ``e1@<params-digest>``, so a
grid never averages apples into oranges; files older than the provenance
schemas (artifact v2, bench v3) still load and trend under commit
``"unknown"``.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "TrendFlag",
    "TrendPoint",
    "TrendSeries",
    "TrendThresholds",
    "build_series",
    "classify_metric",
    "collect_trend_docs",
    "evaluate_trends",
    "render_trend",
]

#: Bench schema versions the trend engine understands (v3 predates the
#: git provenance fields; it trends under commit "unknown").
_READABLE_BENCH_VERSIONS = frozenset({3, 4})


@dataclass(frozen=True)
class TrendThresholds:
    """Relative tolerances for the latest-vs-previous commit comparison."""

    #: Flag a perf metric more than this fraction slower (0.20 = +20%).
    perf_tol: float = 0.20
    #: Flag a quality ratio more than this fraction worse (0.05 = +5%).
    quality_tol: float = 0.05


@dataclass(frozen=True)
class TrendPoint:
    """One commit's value of one metric (mean when a commit has several)."""

    commit: str
    created_at: str
    value: float
    n_sources: int


@dataclass
class TrendSeries:
    """One metric's trajectory across commits, oldest first."""

    experiment: str
    metric: str
    kind: str  # "perf" | "quality" | "info"
    points: List[TrendPoint] = field(default_factory=list)

    @property
    def key(self) -> Tuple[str, str]:
        return (self.experiment, self.metric)


@dataclass(frozen=True)
class TrendFlag:
    """One threshold violation: the newest commit regressed this metric."""

    experiment: str
    metric: str
    kind: str
    previous: float
    latest: float
    rel_change: float
    message: str


def classify_metric(metric: str) -> str:
    """``perf`` / ``quality`` / ``info`` from the metric name alone."""
    last = metric.rsplit(".", 1)[-1]
    if (last.endswith("_s") or last.endswith("_seconds")
            or "wall" in last or "time" in last):
        return "perf"
    if "ratio" in last:
        return "quality"
    return "info"


# --------------------------------------------------------------------- #
# ingestion
# --------------------------------------------------------------------- #
def collect_trend_docs(directory: str | Path) -> List[Dict[str, Any]]:
    """Load every trendable JSON document under ``directory`` (recursive).

    Run artifacts (``kind="experiment_run"``) are validated by the
    artifact loader, bench files (``kind="substrate_bench"``) by the bench
    schema gate; sweep manifests are recognized and passed over silently.
    Anything malformed, truncated, or foreign-schema is skipped with a
    :class:`UserWarning` naming the file — one bad file must not take the
    whole trend down.  Raises :class:`FileNotFoundError` when
    ``directory`` does not exist.
    """
    from repro.experiments.artifacts import ArtifactError, load_artifact

    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(
            f"trend directory {directory} does not exist")
    docs: List[Dict[str, Any]] = []
    for path in sorted(directory.rglob("*.json")):
        try:
            raw = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            warnings.warn(f"trend: skipping unreadable {path}: {exc}",
                          stacklevel=2)
            continue
        if not isinstance(raw, dict):
            warnings.warn(f"trend: skipping {path}: not a JSON object",
                          stacklevel=2)
            continue
        kind = raw.get("kind")
        if kind == "sweep_manifest":
            continue  # an index, not a measurement
        if kind == "substrate_bench":
            if raw.get("schema_version") not in _READABLE_BENCH_VERSIONS:
                warnings.warn(
                    f"trend: skipping {path}: bench schema_version "
                    f"{raw.get('schema_version')!r} not understood",
                    stacklevel=2)
                continue
            doc = raw
        else:
            # Everything else must be a loadable run artifact; the loader
            # owns the schema gate and the error text.
            try:
                doc = load_artifact(path)
            except ArtifactError as exc:
                warnings.warn(f"trend: skipping {path}: {exc}",
                              stacklevel=2)
                continue
        doc["_path"] = str(path)
        docs.append(doc)
    return docs


# --------------------------------------------------------------------- #
# series construction
# --------------------------------------------------------------------- #
def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _params_digest(doc: Mapping[str, Any]) -> str:
    payload = json.dumps(doc.get("params", {}), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:8]


def _run_metrics(doc: Mapping[str, Any]) -> Dict[str, float]:
    """Per-metric value of one run artifact: mean over the table's rows."""
    table = doc.get("table", {})
    rows = table.get("rows", [])
    out: Dict[str, float] = {}
    for col in table.get("columns", []):
        values = [row[col] for row in rows
                  if isinstance(row, dict) and _is_number(row.get(col))]
        if values:
            out[col] = float(sum(values)) / len(values)
    return out


def _bench_metrics(doc: Mapping[str, Any]) -> Dict[str, float]:
    """Flatten one bench document into dotted per-variant perf metrics."""
    out: Dict[str, float] = {}
    for row in doc.get("pool_lifecycle", []):
        out[f"pool_lifecycle.{row['scenario']}.{row['variant']}"
            f".per_round_s"] = row["per_round_s"]
    for row in doc.get("piece_transfer", []):
        out[f"piece_transfer.{row['scenario']}.{row['transfer']}"
            f".per_round_s"] = row["per_round_s"]
    for row in doc.get("matching_scan", []):
        out[f"matching_scan.n{row['n']}.optimized_s"] = row["optimized_s"]
    for row in doc.get("solver_facade", []):
        out[f"solver_facade.{row['solver']}.wall_s"] = row["wall_s"]
    for row in doc.get("remote_exec", []):
        out[f"remote_exec.{row['scenario']}.{row['variant']}"
            f".per_round_s"] = row["per_round_s"]
    return out


def build_series(docs: Sequence[Mapping[str, Any]]) -> List[TrendSeries]:
    """Group the documents' metrics into per-commit series.

    Within a series, commits are ordered by the earliest ``created_at``
    that produced them and a commit's repeated measurements are averaged.
    Run artifacts contribute their table columns under their experiment
    id (suffixed ``@<digest>`` when one experiment appears with several
    distinct param sets); bench files contribute their flattened sections
    under the pseudo-experiment ``bench``.
    """
    # Distinguishing label: plain experiment id when params are uniform.
    digests: Dict[str, set] = {}
    for doc in docs:
        if doc.get("kind") != "substrate_bench":
            exp = str(doc.get("experiment"))
            digests.setdefault(exp, set()).add(_params_digest(doc))

    raw: Dict[Tuple[str, str], List[Tuple[str, str, float]]] = {}
    for doc in docs:
        commit = doc.get("git_commit")
        commit = commit if isinstance(commit, str) and commit else "unknown"
        created = str(doc.get("created_at", ""))
        if doc.get("kind") == "substrate_bench":
            label, metrics = "bench", _bench_metrics(doc)
        else:
            exp = str(doc.get("experiment"))
            label = (exp if len(digests.get(exp, set())) <= 1
                     else f"{exp}@{_params_digest(doc)}")
            metrics = _run_metrics(doc)
        for metric, value in metrics.items():
            raw.setdefault((label, metric), []).append(
                (created, commit, value))

    series: List[TrendSeries] = []
    for (label, metric), samples in sorted(raw.items()):
        by_commit: Dict[str, List[Tuple[str, float]]] = {}
        for created, commit, value in samples:
            by_commit.setdefault(commit, []).append((created, value))
        ordered = sorted(
            by_commit.items(),
            key=lambda item: (min(c for c, _ in item[1]), item[0]))
        points = [
            TrendPoint(
                commit=commit,
                created_at=min(c for c, _ in values),
                value=float(sum(v for _, v in values)) / len(values),
                n_sources=len(values),
            )
            for commit, values in ordered
        ]
        series.append(TrendSeries(experiment=label, metric=metric,
                                  kind=classify_metric(metric),
                                  points=points))
    return series


# --------------------------------------------------------------------- #
# evaluation and rendering
# --------------------------------------------------------------------- #
def evaluate_trends(
    series: Sequence[TrendSeries],
    thresholds: TrendThresholds = TrendThresholds(),
) -> List[TrendFlag]:
    """Latest-vs-previous commit per series; violations become flags."""
    flags: List[TrendFlag] = []
    for s in series:
        if s.kind == "info" or len(s.points) < 2:
            continue
        prev, latest = s.points[-2], s.points[-1]
        if prev.value <= 0:
            continue  # no meaningful relative change from a <=0 baseline
        rel = (latest.value - prev.value) / prev.value
        tol = (thresholds.perf_tol if s.kind == "perf"
               else thresholds.quality_tol)
        if rel > tol:
            noun = "slower" if s.kind == "perf" else "worse"
            flags.append(TrendFlag(
                experiment=s.experiment,
                metric=s.metric,
                kind=s.kind,
                previous=prev.value,
                latest=latest.value,
                rel_change=rel,
                message=(
                    f"{s.experiment} {s.metric}: {prev.value:.6g} → "
                    f"{latest.value:.6g} ({rel:+.1%} {noun} than commit "
                    f"{_short(prev.commit)}, tolerance +{tol:.0%})"),
            ))
    flags.sort(key=lambda f: -f.rel_change)
    return flags


def _short(commit: str) -> str:
    return commit[:9] if commit and commit != "unknown" else commit


def render_trend(
    series: Sequence[TrendSeries],
    flags: Sequence[TrendFlag],
    thresholds: TrendThresholds = TrendThresholds(),
) -> str:
    """The trend report: one aligned line per series, then the verdict."""
    commits: List[str] = []
    for s in series:
        for p in s.points:
            if p.commit not in commits:
                commits.append(p.commit)
    lines = [
        f"# trend: {len(series)} series across {len(commits)} commit(s)"
        + (f" ({' → '.join(_short(c) for c in commits)})" if commits else ""),
        "",
    ]
    if not series:
        lines.append("*(no run artifacts or bench files found)*")
    else:
        flagged = {(f.experiment, f.metric) for f in flags}
        rows = []
        for s in series:
            first, last = s.points[0], s.points[-1]
            if len(s.points) > 1 and first.value != 0:
                step = (last.value - s.points[-2].value) / s.points[-2].value \
                    if s.points[-2].value else float("nan")
                trajectory = (f"{first.value:.6g} → {last.value:.6g} "
                              f"({step:+.1%} last step)")
            else:
                trajectory = f"{last.value:.6g}"
            marker = "REGRESSION" if s.key in flagged else ""
            rows.append((s.experiment, s.metric, s.kind,
                         str(len(s.points)), trajectory, marker))
        headers = ("experiment", "metric", "kind", "pts",
                   "first → latest", "")
        widths = [max(len(h), *(len(r[i]) for r in rows))
                  for i, h in enumerate(headers)]
        lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths))
                     .rstrip())
        lines.append("  ".join("-" * w for w in widths).rstrip())
        for row in rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths))
                         .rstrip())
    lines.append("")
    if flags:
        lines.append(f"{len(flags)} regression(s) flagged "
                     f"(perf tol +{thresholds.perf_tol:.0%}, "
                     f"quality tol +{thresholds.quality_tol:.0%}):")
        for f in flags:
            lines.append(f"  REGRESSION [{f.kind}] {f.message}")
    else:
        lines.append(f"no regressions flagged "
                     f"(perf tol +{thresholds.perf_tol:.0%}, "
                     f"quality tol +{thresholds.quality_tol:.0%})")
    return "\n".join(lines)
