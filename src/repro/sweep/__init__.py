"""Resumable experiment grids and longitudinal trend tracking.

``repro sweep`` turns the declarative experiment registry into a *grid*
runner: every ``--set KEY=V1,V2,...`` axis is cross-producted into cells
(:mod:`repro.sweep.grid`), each cell is executed through
``ExperimentSpec.run(archive_dir=...)`` with process-level fan-out over
the executor seam and recorded in a schema-versioned manifest
(:mod:`repro.sweep.runner` / :mod:`repro.sweep.manifest`), and a cell
whose content-addressed artifact already exists is skipped — so an
interrupted or extended sweep resumes instead of recomputing.  The trend
engine (:mod:`repro.sweep.trend`) then reads directories of run artifacts
and ``BENCH_*.json`` files spanning commits and flags perf slowdowns and
quality drops against configurable thresholds (``repro report --trend DIR
--check``).

See ``docs/SWEEPS.md`` for the grid syntax, manifest format, resume
semantics, and trend thresholds.
"""

from repro.sweep.grid import GridCell, GridError, cell_id, parse_set_args, plan_grid
from repro.sweep.manifest import (
    SWEEP_SCHEMA_VERSION,
    ManifestError,
    build_manifest,
    load_manifest,
    save_manifest,
)
from repro.sweep.runner import SweepResult, cell_artifact_path, run_sweep
from repro.sweep.trend import (
    TrendFlag,
    TrendPoint,
    TrendSeries,
    TrendThresholds,
    build_series,
    classify_metric,
    collect_trend_docs,
    evaluate_trends,
    render_trend,
)

__all__ = [
    "GridCell",
    "GridError",
    "ManifestError",
    "SWEEP_SCHEMA_VERSION",
    "SweepResult",
    "TrendFlag",
    "TrendPoint",
    "TrendSeries",
    "TrendThresholds",
    "build_manifest",
    "build_series",
    "cell_artifact_path",
    "cell_id",
    "classify_metric",
    "collect_trend_docs",
    "evaluate_trends",
    "load_manifest",
    "parse_set_args",
    "plan_grid",
    "render_trend",
    "run_sweep",
    "save_manifest",
]
