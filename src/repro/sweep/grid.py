"""Grid planning for ``repro sweep``: axes → cells → content-hash ids.

A sweep is declared the same way a single run is, with one semantic
twist: in ``repro experiment``, ``--set n_values=2000,4000`` assigns the
whole tuple to one run, while in ``repro sweep`` every comma-separated
value becomes its *own* grid cell — ``--set k_values=4,8`` is an axis
with two points, and two axes cross-product into four cells.  Values are
coerced exactly as the single-run CLI coerces them
(:meth:`~repro.experiments.registry.ExperimentSpec.coerce`), so a
tuple-typed parameter like ``n_values`` receives a one-element tuple per
cell; ``;`` builds multi-element tuple values (``n_values=600;1200`` is
the single axis point ``(600, 1200)``).

A sweep may span several experiments (``repro sweep e1 e8``).  An
unqualified axis applies to every experiment in the sweep — and must be a
grid parameter of each, so a typo cannot silently shrink the grid — while
``e1.n_values=600`` scopes the axis to one experiment.  ``--seeds`` is
one more axis, crossed against everything else.

Each cell is identified by a **content hash** of
``(experiment_id, overrides, seed)`` — twelve hex chars of the SHA-256 of
the canonical-JSON form.  The hash is what makes sweeps resumable: the
cell's artifact file is named by it, so re-planning the same grid finds
the same filenames, and any change to the cell's inputs changes the id
and therefore forces a fresh run instead of serving a stale artifact.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.utils.jsonable import jsonable_deep

__all__ = ["GridCell", "GridError", "cell_id", "parse_set_args", "plan_grid"]


class GridError(ValueError):
    """A sweep grid cannot be built from the given arguments."""


def cell_id(experiment: str, overrides: Dict[str, Any],
            seed: Optional[int]) -> str:
    """The content hash identifying one grid cell.

    Canonical JSON (sorted keys, no whitespace, numpy coerced to plain
    python) of ``(experiment, overrides, seed)``, SHA-256, first 12 hex
    chars.  Stable across processes and CLI argument order; sensitive to
    every input that affects the cell's output.
    """
    payload = json.dumps(
        {
            "experiment": experiment,
            "overrides": jsonable_deep(
                {k: overrides[k] for k in sorted(overrides)}
            ),
            "seed": seed,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


@dataclass(frozen=True)
class GridCell:
    """One planned cell: experiment id, coerced overrides, root seed.

    ``overrides`` is a tuple of ``(key, value)`` pairs (insertion order of
    the CLI axes) so the cell is hashable and picklable; ``seed=None``
    means the experiment's registered default seed.
    """

    experiment: str
    overrides: Tuple[Tuple[str, Any], ...]
    seed: Optional[int]

    @property
    def cell_id(self) -> str:
        return cell_id(self.experiment, dict(self.overrides), self.seed)

    def overrides_dict(self) -> Dict[str, Any]:
        return dict(self.overrides)

    def describe(self) -> str:
        """One human-readable line: id, seed, and the override assignment."""
        sets = ", ".join(f"{k}={v!r}" for k, v in self.overrides)
        seed = "default" if self.seed is None else self.seed
        return (f"{self.experiment}[{self.cell_id}] seed={seed}"
                + (f" {{{sets}}}" if sets else ""))


def parse_set_args(
    experiments: Sequence[str], set_args: Sequence[str]
) -> Dict[str, Dict[str, List[Any]]]:
    """Parse ``--set`` axes into per-experiment ``{key: [value, ...]}``.

    Keys keep their CLI order (it becomes the cross-product nesting
    order); a repeated key replaces the earlier axis.  Raises
    :class:`GridError` on malformed items, unknown parameters, values
    that fail coercion, or a qualifier naming an experiment outside the
    sweep.
    """
    from repro.experiments.registry import (
        UnknownParameterError,
        get_experiment,
    )

    axes: Dict[str, Dict[str, List[Any]]] = {exp: {} for exp in experiments}
    for item in set_args:
        key, sep, text = item.partition("=")
        key = key.strip()
        if not sep or not key:
            raise GridError(
                f"--set expects [EXP.]KEY=VALUE[,VALUE...], got {item!r}")
        targets: Sequence[str] = experiments
        if "." in key:
            prefix, _, bare = key.partition(".")
            prefix, bare = prefix.strip().lower(), bare.strip()
            if not bare:
                raise GridError(
                    f"--set expects [EXP.]KEY=VALUE[,VALUE...], got {item!r}")
            if prefix not in experiments:
                raise GridError(
                    f"--set {item!r} qualifies experiment {prefix!r}, which "
                    f"is not part of this sweep "
                    f"({', '.join(experiments)})")
            targets, key = (prefix,), bare
        values_text = [v.strip() for v in text.split(",") if v.strip()]
        if not values_text:
            raise GridError(f"--set {item!r} lists no values")
        for exp in targets:
            spec = get_experiment(exp)
            coerced: List[Any] = []
            for value_text in values_text:
                try:
                    # ';' is the in-value tuple separator; the single-run
                    # coercer's separator is ',' — translate.
                    coerced.append(
                        spec.coerce(key, value_text.replace(";", ",")))
                except UnknownParameterError as exc:
                    raise GridError(f"--set {item!r}: {exc}") from exc
                except ValueError as exc:
                    raise GridError(
                        f"--set {item!r}: bad value {value_text!r} for "
                        f"{exp}.{key}: {exc}") from exc
            axes[exp][key] = coerced
    return axes


def plan_grid(
    experiments: Sequence[str],
    set_args: Sequence[str] = (),
    seeds: Optional[Sequence[int]] = None,
) -> List[GridCell]:
    """Cross-product the axes into the ordered list of cells to run.

    Cells are ordered experiment-by-experiment (in the given order), then
    by the cross product of that experiment's axes (first axis outermost),
    then by seed — a deterministic order the manifest and the progress
    output both follow.
    """
    from repro.experiments.registry import (
        UnknownExperimentError,
        get_experiment,
    )

    if not experiments:
        raise GridError("a sweep needs at least one experiment id")
    exps = [e.strip().lower() for e in experiments]
    duplicates = {e for e in exps if exps.count(e) > 1}
    if duplicates:
        raise GridError(
            f"experiment(s) listed twice: {', '.join(sorted(duplicates))}")
    for exp in exps:
        try:
            get_experiment(exp)
        except UnknownExperimentError as exc:
            raise GridError(str(exc)) from exc

    axes = parse_set_args(exps, set_args)
    seed_axis: List[Optional[int]] = (
        list(seeds) if seeds else [None]
    )
    if len(set(seed_axis)) != len(seed_axis):
        raise GridError(f"--seeds lists a duplicate seed: {seed_axis}")

    cells: List[GridCell] = []
    for exp in exps:
        keys = list(axes[exp])
        pools = [axes[exp][k] for k in keys]
        for combo in itertools.product(*pools):
            overrides = tuple(zip(keys, combo))
            for seed in seed_axis:
                cells.append(GridCell(exp, overrides, seed))
    return cells
