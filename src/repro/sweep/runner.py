"""The resumable sweep runner: planned cells → archived artifacts.

Execution goes through the same two seams everything else in the repo
uses: each cell runs via
:meth:`~repro.experiments.registry.ExperimentSpec.run` with
``archive_dir`` staging, and cells fan out across workers through the
executor seam (:func:`repro.dist.executor.resolve_executor`) — under the
``processes``/``remote`` backends whole cells ship to workers (the jobs
are frozen picklable dataclasses, like trials), with the engines *inside*
each cell pinned serial so a cell never nests a second pool
(the same rule :func:`repro.experiments.harness.run_trials` applies).

Resume semantics
----------------
A cell's artifact lands at ``DIR/cells/<experiment>-<cell_id>.json``,
where ``cell_id`` is the content hash of ``(experiment, overrides,
seed)``.  Before executing, the runner checks that path: an artifact that
exists *and loads cleanly* means the cell is served from cache
(``status="skipped"``); a missing, truncated, or corrupt artifact means
the cell runs.  Artifacts are written atomically (full temp file, then
``os.replace``), so a sweep killed mid-cell leaves either a complete
artifact or none — never a half-written file that would poison a resume.

Failure isolation
-----------------
A raising cell is recorded as ``status="failed"`` with the exception text
and the sweep *continues*; :attr:`SweepResult.exit_code` is 1 when any
cell failed, so CI still goes red, but one diverging grid corner cannot
abort the other cells' work.  Failed cells write no artifact, so the next
invocation retries exactly them.

``retry_failed=N`` (CLI ``--retry-failed N``) additionally re-runs a
raising cell up to N extra times *within* the invocation before recording
it failed — for transient faults (a broken worker pool, a flaky
filesystem) that would succeed on the spot.  Every executed record
carries ``attempts`` (how many runs the cell took), which flows into the
manifest verbatim.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.sweep.grid import GridCell
from repro.sweep.manifest import (
    ManifestError,
    build_manifest,
    load_manifest,
    save_manifest,
)
from repro.utils.jsonable import jsonable_deep

__all__ = ["SweepResult", "cell_artifact_path", "run_sweep"]

#: Backends whose workers run in other processes: cells shipped there pin
#: their inner engines to serial, mirroring run_trials' nesting rule.
_PROCESS_LEVEL_BACKENDS = frozenset({"processes", "remote"})


def cell_artifact_path(directory: str | Path, cell: GridCell) -> Path:
    """The deterministic artifact path of one cell in a sweep directory."""
    return Path(directory) / "cells" / f"{cell.experiment}-{cell.cell_id}.json"


@dataclass(frozen=True)
class _CellJob:
    """One cell's execution order — frozen and picklable, like a Trial."""

    experiment: str
    overrides: Tuple[Tuple[str, Any], ...]
    seed: Optional[int]
    cell_id: str
    out_path: str
    artifact_rel: str
    pin_serial_engines: bool
    #: Extra runs allowed after a raise before the cell is recorded failed.
    retries: int = 0


def _execute_cell(job: _CellJob) -> Dict[str, Any]:
    """Run one cell; never raises — failures become ``status="failed"``.

    Module-level so the ``processes`` backend can pickle it.  The run
    archives into a private staging directory first; the artifact is then
    amended with the cell's identity (``sweep_cell``) and moved to its
    content-addressed final path in one ``os.replace``.  A raising run is
    repeated up to ``job.retries`` extra times (transient-fault cover);
    the returned record's ``attempts`` counts every run taken.
    """
    from repro.dist.executor import EXECUTOR_ENV
    from repro.experiments.registry import get_experiment

    start = time.perf_counter()
    record: Dict[str, Any] = {
        "cell_id": job.cell_id,
        "experiment": job.experiment,
        "overrides": jsonable_deep(dict(job.overrides)),
        "seed": job.seed,
        "artifact": None,
        "error": None,
    }
    previous = os.environ.get(EXECUTOR_ENV)
    if job.pin_serial_engines:
        os.environ[EXECUTOR_ENV] = "serial"
    staging = Path(f"{job.out_path}.staging-{os.getpid()}")
    attempts = 0
    last_error: Optional[str] = None
    try:
        for attempt in range(1 + max(0, job.retries)):
            attempts = attempt + 1
            try:
                spec = get_experiment(job.experiment)
                table = spec.run(seed=job.seed, archive_dir=staging,
                                 **dict(job.overrides))
                doc = json.loads(Path(table.artifact_path).read_text())
                doc["sweep_cell"] = {
                    "cell_id": job.cell_id,
                    "overrides": jsonable_deep(dict(job.overrides)),
                    "seed": job.seed,
                }
                tmp = Path(f"{job.out_path}.tmp-{os.getpid()}")
                tmp.write_text(json.dumps(doc, indent=2) + "\n")
                os.replace(tmp, job.out_path)
                record.update(
                    status="done",
                    artifact=job.artifact_rel,
                    seed_resolved=doc.get("seed"),
                    rows=len(doc.get("table", {}).get("rows", [])),
                )
                last_error = None
                break
            except Exception as exc:  # noqa: BLE001 — isolation contract
                last_error = f"{type(exc).__name__}: {exc}"
                shutil.rmtree(staging, ignore_errors=True)
        if last_error is not None:
            record.update(status="failed", error=last_error)
    finally:
        if job.pin_serial_engines:
            if previous is None:
                os.environ.pop(EXECUTOR_ENV, None)
            else:
                os.environ[EXECUTOR_ENV] = previous
        shutil.rmtree(staging, ignore_errors=True)
    record["attempts"] = attempts
    record["wall_time_s"] = round(time.perf_counter() - start, 6)
    return record


@dataclass
class SweepResult:
    """The outcome of one :func:`run_sweep` invocation."""

    directory: Path
    manifest_path: Path
    manifest: Dict[str, Any]
    #: Records of cells executed this invocation (``done`` or ``failed``),
    #: in plan order.
    executed: List[Dict[str, Any]] = field(default_factory=list)
    #: Records of cells served from their cached artifact, in plan order.
    skipped: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def failed(self) -> List[Dict[str, Any]]:
        return [r for r in self.executed if r["status"] == "failed"]

    @property
    def done(self) -> List[Dict[str, Any]]:
        return [r for r in self.executed if r["status"] == "done"]

    @property
    def exit_code(self) -> int:
        """0 when every cell is done or cached; 1 when any cell failed."""
        return 1 if self.failed else 0

    def summary(self) -> str:
        total = len(self.executed) + len(self.skipped)
        return (f"{total} cells: {len(self.done)} executed, "
                f"{len(self.skipped)} skipped (cached), "
                f"{len(self.failed)} failed")


def run_sweep(
    cells: Sequence[GridCell],
    directory: str | Path,
    *,
    executor: Any = None,
    force: bool = False,
    retry_failed: int = 0,
    grid_args: Optional[Mapping[str, Any]] = None,
) -> SweepResult:
    """Execute a planned grid into ``directory``, resuming past work.

    ``executor`` follows the :data:`repro.dist.executor.ExecutorSpec`
    convention (``None`` resolves from ``$REPRO_EXECUTOR``) and selects
    the backend that fans whole *cells* out; a resolved backend is closed
    here, a caller-passed instance stays open (the substrate ownership
    rule).  ``force=True`` re-executes every cell regardless of cached
    artifacts.  ``retry_failed=N`` re-runs a raising cell up to N extra
    times before recording it failed (the record's ``attempts`` counts
    the runs).  ``grid_args`` is recorded verbatim in the manifest as the
    grid's declaration (the CLI passes its raw arguments).
    """
    from repro.dist.executor import Executor, resolve_executor
    from repro.experiments.artifacts import ArtifactError, load_artifact

    if retry_failed < 0:
        raise ValueError(f"retry_failed must be >= 0, got {retry_failed}")
    directory = Path(directory)
    cells_dir = directory / "cells"
    cells_dir.mkdir(parents=True, exist_ok=True)

    # Duplicate cells (e.g. two identical --set axes) collapse to one run.
    unique: Dict[str, GridCell] = {}
    for cell in cells:
        unique.setdefault(cell.cell_id, cell)

    backend = resolve_executor(executor)
    pin_serial = backend.name in _PROCESS_LEVEL_BACKENDS

    skipped: List[Dict[str, Any]] = []
    jobs: List[_CellJob] = []
    for cell in unique.values():
        out_path = cell_artifact_path(directory, cell)
        artifact_rel = str(out_path.relative_to(directory))
        cached = False
        if not force and out_path.exists():
            try:
                doc = load_artifact(out_path)
                cached = True
            except ArtifactError:
                cached = False  # corrupt cache entry: self-heal by re-running
        if cached:
            skipped.append({
                "cell_id": cell.cell_id,
                "experiment": cell.experiment,
                "overrides": jsonable_deep(cell.overrides_dict()),
                "seed": cell.seed,
                "status": "skipped",
                "artifact": artifact_rel,
                "seed_resolved": doc.get("seed"),
                "error": None,
                "attempts": 0,
                "wall_time_s": 0.0,
            })
        else:
            jobs.append(_CellJob(
                experiment=cell.experiment,
                overrides=cell.overrides,
                seed=cell.seed,
                cell_id=cell.cell_id,
                out_path=str(out_path),
                artifact_rel=artifact_rel,
                pin_serial_engines=pin_serial,
                retries=retry_failed,
            ))

    try:
        executed = backend.map(_execute_cell, jobs) if jobs else []
    finally:
        if not isinstance(executor, Executor):
            backend.close()

    previous = None
    manifest_path = directory / "manifest.json"
    if manifest_path.exists():
        try:
            previous = load_manifest(manifest_path)
        except ManifestError:
            previous = None  # unreadable prior manifest: rebuild from scratch
    grid_info = dict(grid_args) if grid_args is not None else {
        "experiments": sorted({c.experiment for c in unique.values()}),
    }
    grid_info.setdefault("cells_planned", len(unique))
    manifest = build_manifest(skipped + list(executed), grid=grid_info,
                              previous=previous)
    save_manifest(manifest, manifest_path)
    return SweepResult(
        directory=directory,
        manifest_path=manifest_path,
        manifest=manifest,
        executed=list(executed),
        skipped=skipped,
    )
