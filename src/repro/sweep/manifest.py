"""The schema-versioned sweep manifest: one JSON index per sweep directory.

``DIR/manifest.json`` is the sweep's ledger: every cell the directory has
ever seen — id, experiment, overrides, seed, status (``done`` /
``skipped`` / ``failed``), artifact path (relative to the sweep
directory), wall time, and the error text of a failed cell — plus the
grid that the most recent invocation planned and the shared provenance
stamp (commit, host, timestamp).  Re-running a sweep *merges*: entries
for cells outside the current grid are retained, entries for current
cells are replaced, so the manifest stays a faithful index of the
``cells/`` directory as a sweep is extended axis by axis across sessions.

Schema (``schema_version`` 1)::

    {
      "schema_version": 1,
      "kind": "sweep_manifest",
      "created_at": ..., "host": {...},
      "git_commit": ..., "git_dirty": ...,
      "grid": {"experiments": ["e1", "e8"], "set": [...], "seeds": [...]},
      "counts": {"done": 4, "skipped": 2, "failed": 1},
      "cells": [
        {"cell_id": "a1b2c3d4e5f6", "experiment": "e1",
         "overrides": {"k_values": [4]}, "seed": 0,
         "status": "done", "artifact": "cells/e1-a1b2c3d4e5f6.json",
         "wall_time_s": 1.72, "error": null},
        ...
      ]
    }

As with run artifacts, ``schema_version`` gates forward compatibility:
loaders reject versions they do not understand rather than guess.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from repro.utils.provenance import provenance_stamp

__all__ = [
    "SWEEP_SCHEMA_VERSION",
    "ManifestError",
    "build_manifest",
    "load_manifest",
    "save_manifest",
]

SWEEP_SCHEMA_VERSION = 1

_READABLE_SCHEMA_VERSIONS = frozenset({1})


class ManifestError(ValueError):
    """A sweep manifest is malformed or from an unknown schema version."""


def build_manifest(
    records: List[Dict[str, Any]],
    *,
    grid: Mapping[str, Any],
    previous: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the manifest document from this invocation's cell records.

    ``records`` carry one dict per planned cell (see
    :mod:`repro.sweep.runner`); ``previous`` is the directory's prior
    manifest, whose entries for cells *not* in the current grid are
    carried forward so the manifest indexes the whole directory, not just
    the latest invocation.
    """
    entries: Dict[str, Dict[str, Any]] = {}
    if previous:
        for cell in previous.get("cells", []):
            if isinstance(cell, dict) and "cell_id" in cell:
                entries[cell["cell_id"]] = dict(cell)
    for record in records:
        entries[record["cell_id"]] = dict(record)
    cells = sorted(entries.values(),
                   key=lambda c: (c.get("experiment", ""), c["cell_id"]))
    counts = Counter(c.get("status", "unknown") for c in cells)
    return {
        "schema_version": SWEEP_SCHEMA_VERSION,
        "kind": "sweep_manifest",
        **provenance_stamp(),
        "grid": dict(grid),
        "counts": dict(sorted(counts.items())),
        "cells": cells,
    }


def save_manifest(doc: Mapping[str, Any], path: str | Path) -> Path:
    """Write the manifest atomically (tmp + rename): a sweep killed
    mid-write must never leave a truncated index behind."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + f".tmp-{os.getpid()}")
    tmp.write_text(json.dumps(doc, indent=2) + "\n")
    os.replace(tmp, path)
    return path


def load_manifest(path: str | Path) -> Dict[str, Any]:
    """Load and validate one sweep manifest."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise ManifestError(f"cannot read sweep manifest {path}: {exc}") \
            from exc
    if not isinstance(doc, dict):
        raise ManifestError(f"sweep manifest {path} is not a JSON object")
    if doc.get("kind") != "sweep_manifest":
        raise ManifestError(
            f"{path} is not a sweep manifest (kind={doc.get('kind')!r})")
    version = doc.get("schema_version")
    if version not in _READABLE_SCHEMA_VERSIONS:
        raise ManifestError(
            f"sweep manifest {path} has schema_version {version!r}; this "
            f"build understands versions "
            f"{sorted(_READABLE_SCHEMA_VERSIONS)} — refusing to guess at a "
            f"different layout")
    if not isinstance(doc.get("cells"), list):
        raise ManifestError(f"sweep manifest {path} is missing 'cells'")
    return doc
