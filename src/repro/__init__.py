"""repro — randomized composable coresets for matching and vertex cover.

A full reproduction of Assadi & Khanna, *Randomized Composable Coresets for
Matching and Vertex Cover*, SPAA 2017 (arXiv:1705.08242): the coresets
themselves, the simultaneous-communication and MapReduce substrates they run
on, the hard distributions behind the paper's lower bounds, and the baseline
algorithms they are compared against.

Quick start
-----------
>>> from repro import quickstart_matching
>>> result = quickstart_matching(n=2000, k=8, seed=0)
>>> result["ratio"] <= 3.0
True

See ``examples/`` for runnable end-to-end scenarios and ``benchmarks/`` for
the per-theorem experiment harness.
"""

from __future__ import annotations

__version__ = "1.0.0"

from repro.graph import BipartiteGraph, Graph, PartitionedGraph, WeightedGraph


def quickstart_matching(
    n: int = 2000, k: int = 8, seed: int | None = 0, executor=None
) -> dict:
    """One-call demo: random bipartite workload, Theorem 1 coreset protocol,
    measured approximation ratio and communication.

    ``executor`` picks where the k machines run (``"serial"``,
    ``"threads"``, ``"processes"``, or ``None`` for ``$REPRO_EXECUTOR``);
    the numbers are bit-identical across backends for the same seed.
    Returns a dict with keys ``optimum``, ``output``, ``ratio``,
    ``total_bits``, ``bits_per_machine``.
    """
    from repro.core.protocols import matching_coreset_protocol
    from repro.dist.coordinator import run_simultaneous
    from repro.graph.generators import planted_matching_gnp
    from repro.graph.partition import random_k_partition
    from repro.matching.api import matching_number
    from repro.utils.rng import spawn_generators

    gens = spawn_generators(seed, 3)
    graph, _ = planted_matching_gnp(n, n, p=2.0 / n, rng=gens[0])
    partitioned = random_k_partition(graph, k, gens[1])
    result = run_simultaneous(matching_coreset_protocol(), partitioned,
                              gens[2], executor=executor)
    optimum = matching_number(graph)
    output = int(result.output.shape[0])
    return {
        "optimum": optimum,
        "output": output,
        "ratio": optimum / max(1, output),
        "total_bits": result.total_bits,
        "bits_per_machine": result.ledger.max_player_bits(),
    }


__all__ = [
    "BipartiteGraph",
    "Graph",
    "PartitionedGraph",
    "WeightedGraph",
    "__version__",
    "quickstart_matching",
]
