"""Randomness discipline.

Every stochastic function in this library takes an explicit source of
randomness.  We standardize on :class:`numpy.random.Generator` and use
:class:`numpy.random.SeedSequence` spawning to derive independent child
streams, following the NumPy best-practice for reproducible parallel (or
simulated-parallel) computations: a single user-facing seed deterministically
fans out into per-machine / per-trial generators with no correlation between
streams.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

#: An *explicit* source of randomness: a seed integer, a generator, or a
#: seed sequence.  Functions that require the caller to supply randomness
#: (no entropy default) annotate with this.
Seedable = Union[int, np.random.Generator, np.random.SeedSequence]

#: The library-wide randomness parameter type: any :data:`Seedable`, or
#: ``None`` for fresh OS entropy.  The ``Optional`` is spelled out so
#: every ``rng: RandomState = None`` default type-checks without
#: per-call-site ignores.
RandomState = Optional[Seedable]

__all__ = ["RandomState", "Seedable", "as_generator", "spawn_generators",
           "spawn_seeds"]


def as_generator(seed: RandomState = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh OS entropy), an ``int`` seed, a ``SeedSequence``,
    or an existing ``Generator`` (returned unchanged so callers can thread a
    single stream through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_seeds(seed: RandomState, n: int) -> list[np.random.SeedSequence]:
    """Derive ``n`` independent child seed sequences from ``seed``.

    If ``seed`` is a ``Generator`` we pull a fresh 128-bit entropy value from
    it, so that repeated calls with the same generator yield distinct (but
    reproducible) families of streams.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of seeds: {n}")
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    elif isinstance(seed, np.random.Generator):
        entropy = seed.integers(0, 2**63 - 1, size=2, dtype=np.int64)
        root = np.random.SeedSequence([int(e) for e in entropy])
    else:
        root = np.random.SeedSequence(seed)
    return root.spawn(n)


def spawn_generators(seed: RandomState, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent generators from ``seed`` (see `spawn_seeds`)."""
    return [np.random.default_rng(s) for s in spawn_seeds(seed, n)]


def random_permutation(
    n: int, rng: RandomState = None
) -> np.ndarray:  # pragma: no cover - thin wrapper
    """A uniformly random permutation of ``range(n)`` as an int64 array."""
    return as_generator(rng).permutation(n).astype(np.int64)


def sample_distinct_pairs(
    universe: Sequence[int] | np.ndarray, n_pairs: int, rng: RandomState = None
) -> np.ndarray:
    """Sample ``n_pairs`` ordered pairs of *distinct* elements of ``universe``.

    Used by generators that need random non-loop edges.  Returns an
    ``(n_pairs, 2)`` int64 array.  Sampling is with replacement across pairs
    (the same pair may repeat) but within each pair the two entries differ.
    """
    gen = as_generator(rng)
    universe = np.asarray(universe, dtype=np.int64)
    m = universe.shape[0]
    if m < 2:
        raise ValueError("need at least two elements to form distinct pairs")
    first = gen.integers(0, m, size=n_pairs)
    # Sample the second index from [0, m-1) and shift past the first index:
    # this yields a uniform draw over the m-1 values != first.
    second = gen.integers(0, m - 1, size=n_pairs)
    second = np.where(second >= first, second + 1, second)
    return np.stack([universe[first], universe[second]], axis=1)
