"""Small vectorized array helpers shared across the library.

These are the kind of three-line numpy idioms that would otherwise be
re-implemented (subtly differently) in several modules: canonical edge
orientation, edge deduplication via structured views, membership masks.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "canonical_edges",
    "dedupe_edges",
    "edge_keys",
    "isin_mask",
    "unique_vertices",
]


def canonical_edges(edges: np.ndarray) -> np.ndarray:
    """Orient each undirected edge so that ``u <= v``.

    ``edges`` is an ``(m, 2)`` int array; returns a new array (input is not
    modified).  Canonical orientation makes set operations on undirected edge
    lists well-defined.
    """
    edges = np.asarray(edges, dtype=np.int64)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError(f"edges must have shape (m, 2), got {edges.shape}")
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    return np.stack([lo, hi], axis=1)


def edge_keys(edges: np.ndarray, n_vertices: int) -> np.ndarray:
    """Encode canonical edges as scalar int64 keys ``u * n + v``.

    Scalar keys let us use ``np.unique`` / ``np.isin`` on edge sets without
    structured dtypes.  Requires ``n_vertices**2`` to fit in int64, which
    holds for every graph size this library targets (n ≤ ~3·10⁹).
    """
    ce = canonical_edges(edges)
    return ce[:, 0] * np.int64(n_vertices) + ce[:, 1]


def dedupe_edges(edges: np.ndarray, n_vertices: int) -> np.ndarray:
    """Remove duplicate undirected edges (and self-loops), sorted by key."""
    edges = np.asarray(edges, dtype=np.int64)
    if edges.size == 0:
        return edges.reshape(0, 2)
    ce = canonical_edges(edges)
    ce = ce[ce[:, 0] != ce[:, 1]]  # drop self-loops
    if ce.shape[0] == 0:
        return ce
    keys = ce[:, 0] * np.int64(n_vertices) + ce[:, 1]
    _, idx = np.unique(keys, return_index=True)
    return ce[np.sort(idx)]


def isin_mask(edges: np.ndarray, other: np.ndarray, n_vertices: int) -> np.ndarray:
    """Boolean mask of which rows of ``edges`` appear (undirected) in ``other``."""
    if np.asarray(edges).size == 0:
        return np.zeros(0, dtype=bool)
    if np.asarray(other).size == 0:
        return np.zeros(np.asarray(edges).shape[0], dtype=bool)
    return np.isin(edge_keys(edges, n_vertices), edge_keys(other, n_vertices))


def unique_vertices(edges: np.ndarray) -> np.ndarray:
    """Sorted array of distinct endpoints appearing in ``edges``."""
    edges = np.asarray(edges, dtype=np.int64)
    if edges.size == 0:
        return np.zeros(0, dtype=np.int64)
    return np.unique(edges.ravel())
