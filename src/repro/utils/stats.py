"""Streaming statistics and summaries for experiment aggregation.

The experiment harness (:mod:`repro.experiments`) repeats every measurement
across independent trials; these helpers turn the per-trial samples into the
mean/std/CI rows printed in the benchmark tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "RunningStat",
    "Summary",
    "confidence_interval",
    "geometric_mean",
    "summarize",
]


@dataclass
class RunningStat:
    """Welford-style online mean/variance accumulator.

    Numerically stable single-pass accumulation; used where trials are
    generated lazily and we do not want to hold all samples.
    """

    count: int = 0
    _mean: float = 0.0
    _m2: float = 0.0
    _min: float = field(default=math.inf)
    _max: float = field(default=-math.inf)

    def add(self, x: float) -> None:
        x = float(x)
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        self._min = min(self._min, x)
        self._max = max(self._max, x)

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("no samples accumulated")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample (Bessel-corrected) variance; 0.0 for a single sample."""
        if self.count == 0:
            raise ValueError("no samples accumulated")
        if self.count == 1:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        if self.count == 0:
            raise ValueError("no samples accumulated")
        return self._min

    @property
    def max(self) -> float:
        if self.count == 0:
            raise ValueError("no samples accumulated")
        return self._max


@dataclass(frozen=True, slots=True)
class Summary:
    """Aggregated view of a sample: mean, std, extremes, and a 95% CI."""

    n: int
    mean: float
    std: float
    min: float
    max: float
    ci_low: float
    ci_high: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.4g} ± {self.std:.2g} (n={self.n})"


# Two-sided 95% normal quantile; with the small trial counts used in the
# benchmarks an exact t-quantile would differ by < 15%, which is immaterial
# for the shape comparisons we make.
_Z95 = 1.959963984540054


def confidence_interval(
    samples: Sequence[float] | np.ndarray, level: float = 0.95
) -> tuple[float, float]:
    """Normal-approximation confidence interval for the mean of ``samples``."""
    xs = np.asarray(samples, dtype=np.float64)
    if xs.size == 0:
        raise ValueError("cannot compute a confidence interval of no samples")
    if not 0.0 < level < 1.0:
        raise ValueError(f"confidence level must be in (0, 1), got {level}")
    mean = float(xs.mean())
    if xs.size == 1:
        return (mean, mean)
    # Inverse normal CDF via scipy would add a dependency edge here; the
    # benchmarks only ever use 95%, so special-case it and fall back to a
    # rational approximation otherwise.
    if abs(level - 0.95) < 1e-12:
        z = _Z95
    else:
        z = _normal_quantile(0.5 + level / 2.0)
    half = z * float(xs.std(ddof=1)) / math.sqrt(xs.size)
    return (mean - half, mean + half)


def _normal_quantile(p: float) -> float:
    """Acklam's rational approximation to the standard normal quantile."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"quantile argument must be in (0, 1), got {p}")
    # Coefficients from Peter Acklam's algorithm (relative error < 1.15e-9).
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low, p_high = 0.02425, 1 - 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if p <= p_high:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
        )
    q = math.sqrt(-2 * math.log(1 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
        (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
    )


def summarize(samples: Sequence[float] | np.ndarray, level: float = 0.95) -> Summary:
    """Build a :class:`Summary` from raw per-trial samples."""
    xs = np.asarray(samples, dtype=np.float64)
    if xs.size == 0:
        raise ValueError("cannot summarize an empty sample")
    lo, hi = confidence_interval(xs, level)
    std = float(xs.std(ddof=1)) if xs.size > 1 else 0.0
    return Summary(
        n=int(xs.size),
        mean=float(xs.mean()),
        std=std,
        min=float(xs.min()),
        max=float(xs.max()),
        ci_low=lo,
        ci_high=hi,
    )


def geometric_mean(samples: Sequence[float] | np.ndarray) -> float:
    """Geometric mean, used for aggregating approximation ratios."""
    xs = np.asarray(samples, dtype=np.float64)
    if xs.size == 0:
        raise ValueError("cannot take the geometric mean of an empty sample")
    if np.any(xs <= 0):
        raise ValueError("geometric mean requires strictly positive samples")
    return float(np.exp(np.mean(np.log(xs))))
