"""One provenance stamp for every persisted measurement.

Run artifacts (:mod:`repro.experiments.artifacts`), the substrate bench
(:mod:`repro.experiments.bench`), and sweep manifests
(:mod:`repro.sweep.manifest`) all persist numbers that only mean something
relative to the code that produced them.  This module is the single place
that records that context: the UTC timestamp, the host fingerprint, and —
the part that turns isolated snapshots into a longitudinal trajectory —
the git commit the working tree was at, plus whether it carried
uncommitted changes.  The trend engine (:mod:`repro.sweep.trend`) keys its
per-metric series on ``git_commit``, so two artifacts produced from
different commits become two points on one curve instead of two unrelated
files.

Outside a git checkout (or with git missing entirely) the stamp degrades
to ``git_commit=None`` / ``git_dirty=None`` rather than failing: artifacts
must stay writable from an installed wheel or an exported tarball.
"""

from __future__ import annotations

import os
import platform
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

__all__ = ["git_state", "provenance_stamp"]

_GIT_TIMEOUT_S = 10


def git_state(
    cwd: str | Path | None = None,
) -> Tuple[Optional[str], Optional[bool]]:
    """``(commit_hex, dirty)`` of the checkout containing ``cwd``.

    ``commit_hex`` is the full 40-char HEAD hash; ``dirty`` is True when
    ``git status --porcelain`` reports any tracked or staged change.
    Returns ``(None, None)`` when ``cwd`` is not inside a git work tree,
    git is not installed, or either command fails — provenance is
    best-effort, never a reason an artifact cannot be written.
    """
    try:
        head = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=None if cwd is None else str(cwd),
            capture_output=True, text=True, timeout=_GIT_TIMEOUT_S,
        )
        if head.returncode != 0:
            return None, None
        commit = head.stdout.strip() or None
        if commit is None:
            return None, None
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=None if cwd is None else str(cwd),
            capture_output=True, text=True, timeout=_GIT_TIMEOUT_S,
        )
        dirty = bool(status.stdout.strip()) if status.returncode == 0 else None
        return commit, dirty
    except (OSError, subprocess.SubprocessError):
        return None, None


def provenance_stamp(cwd: str | Path | None = None) -> Dict[str, Any]:
    """The shared provenance fields every schema-versioned artifact carries.

    ``created_at`` (UTC, second precision), ``host`` (python version,
    platform string, cpu count), ``git_commit`` and ``git_dirty`` (both
    ``None`` outside a checkout).  Callers merge this dict into their
    artifact document verbatim, so the field names are identical across
    run artifacts, bench files, and sweep manifests — which is what lets
    the trend engine treat them uniformly.
    """
    commit, dirty = git_state(cwd)
    return {
        "created_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "git_commit": commit,
        "git_dirty": dirty,
    }
