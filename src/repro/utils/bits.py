"""Bit-size model for communication accounting.

The paper's communication bounds (Results 2 and 3) are stated in *bits*.  We
adopt the standard encoding model used throughout the simultaneous
communication literature:

* a vertex identifier in a graph on ``n`` vertices costs ``ceil(log2 n)``
  bits (with a 1-bit floor so that degenerate 1-vertex graphs still cost
  something);
* an edge costs two vertex identifiers;
* auxiliary integer payloads (counts, weights quantized to integers) cost
  ``ceil(log2(value + 1))`` bits with the same 1-bit floor.

All protocol machinery in :mod:`repro.dist` routes its accounting through
this module so experiments E9/E10/E13 measure a single consistent quantity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "BitCost",
    "edge_bits",
    "edges_bits",
    "int_bits",
    "vertex_bits",
    "vertices_bits",
]


def vertex_bits(n_vertices: int) -> int:
    """Bits to name one vertex out of ``n_vertices``."""
    if n_vertices <= 0:
        raise ValueError(f"graph must have at least one vertex, got {n_vertices}")
    return max(1, math.ceil(math.log2(n_vertices)))


def edge_bits(n_vertices: int) -> int:
    """Bits to name one edge (an ordered pair of vertex ids)."""
    return 2 * vertex_bits(n_vertices)


def vertices_bits(count: int, n_vertices: int) -> int:
    """Bits to send ``count`` vertex ids."""
    if count < 0:
        raise ValueError(f"negative vertex count: {count}")
    return count * vertex_bits(n_vertices)


def edges_bits(count: int, n_vertices: int) -> int:
    """Bits to send ``count`` edges."""
    if count < 0:
        raise ValueError(f"negative edge count: {count}")
    return count * edge_bits(n_vertices)


def int_bits(value: int) -> int:
    """Bits to send one non-negative integer payload."""
    if value < 0:
        raise ValueError(f"negative payload: {value}")
    return max(1, math.ceil(math.log2(value + 1)))


@dataclass(frozen=True, slots=True)
class BitCost:
    """An itemized bit cost: edges + fixed vertices + auxiliary payload.

    The paper's vertex-cover coreset sends both a subgraph *and* a fixed
    vertex set, and its size is measured in both quantities (Definition in
    §1, "we use randomized coresets...").  ``BitCost`` keeps the two visible
    separately while providing a single total.
    """

    edge_count: int = 0
    vertex_count: int = 0
    aux_bits: int = 0

    def total_bits(self, n_vertices: int) -> int:
        """Total cost in bits under the standard encoding for ``n_vertices``."""
        return (
            edges_bits(self.edge_count, n_vertices)
            + vertices_bits(self.vertex_count, n_vertices)
            + self.aux_bits
        )

    def __add__(self, other: "BitCost") -> "BitCost":
        return BitCost(
            self.edge_count + other.edge_count,
            self.vertex_count + other.vertex_count,
            self.aux_bits + other.aux_bits,
        )
