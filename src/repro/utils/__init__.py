"""Shared low-level utilities: RNG discipline, bit accounting, statistics.

These helpers are deliberately free of any graph or protocol knowledge so
that every other subpackage can depend on them without cycles.
"""

from repro.utils.bits import (
    BitCost,
    edge_bits,
    edges_bits,
    vertex_bits,
    vertices_bits,
)
from repro.utils.rng import as_generator, spawn_generators, spawn_seeds
from repro.utils.stats import (
    RunningStat,
    confidence_interval,
    geometric_mean,
    summarize,
)

__all__ = [
    "BitCost",
    "RunningStat",
    "as_generator",
    "confidence_interval",
    "edge_bits",
    "edges_bits",
    "geometric_mean",
    "spawn_generators",
    "spawn_seeds",
    "summarize",
    "vertex_bits",
    "vertices_bits",
]
