"""One JSON-coercion rule for the whole library.

Numpy scalars and arrays appear in experiment rows, run artifacts, and
solver results alike; this module is the single place that maps them (and
containers of them) onto plain python for ``json.dumps``.  The experiment
harness, the artifact writer, and the solver facade all delegate here, so
a future type addition lands everywhere at once.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["jsonable", "jsonable_deep"]


def jsonable(value: Any) -> Any:
    """Coerce one numpy scalar/array to plain python; pass the rest through."""
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value


def jsonable_deep(value: Any) -> Any:
    """:func:`jsonable`, recursing into lists/tuples/dicts."""
    if isinstance(value, (list, tuple)):
        return [jsonable_deep(v) for v in value]
    if isinstance(value, dict):
        return {str(k): jsonable_deep(v) for k, v in value.items()}
    return jsonable(value)
