"""The workload cache: ``~/.cache/repro/`` layout and offline policy.

Two kinds of artifact live under the cache root:

* ``raw/NAME.<ext>`` — the raw upstream download of a dataset-backed
  workload (:mod:`repro.workloads.datasets`), exactly as fetched;
* ``workloads/NAME.npz`` — a built workload at its default parameters,
  serialized as **one** ``.npz`` artifact through
  :func:`repro.graph.io.save_npz` (schema v2 carries weights and
  capacities), written by :func:`fetch_workload` / ``repro workloads
  --fetch``.

Offline policy
--------------
``$REPRO_OFFLINE`` (any non-empty value other than ``0``) forbids network
access: loaders must use the bundled fixtures or an existing cache entry.
Every network touch funnels through :func:`allow_network`, so the offline
guarantee is one predicate, not a convention — and the test suite enforces
it with a socket-blocking fixture.  ``$REPRO_CACHE_DIR`` overrides the
cache root (default ``~/.cache/repro``).
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = [
    "CACHE_DIR_ENV",
    "OFFLINE_ENV",
    "allow_network",
    "cache_dir",
    "fetch_workload",
    "raw_cache_path",
    "workload_cache_path",
]

CACHE_DIR_ENV = "REPRO_CACHE_DIR"
OFFLINE_ENV = "REPRO_OFFLINE"


def cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV, "").strip()
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


def allow_network() -> bool:
    """False when ``$REPRO_OFFLINE`` forbids touching the network."""
    value = os.environ.get(OFFLINE_ENV, "").strip()
    return value in ("", "0")


def raw_cache_path(filename: str) -> Path:
    """Where a raw dataset download is cached."""
    return cache_dir() / "raw" / filename


def workload_cache_path(name: str) -> Path:
    """Where a built workload's single ``.npz`` artifact lives."""
    return cache_dir() / "workloads" / f"{name.strip().lower()}.npz"


def fetch_workload(name: str, *, seed: int = 0, force: bool = False) -> Path:
    """Materialize workload ``name`` at its default parameters into the
    cache as one ``.npz`` artifact; return the artifact path.

    An existing artifact is reused unless ``force``.  Dataset-backed
    workloads pull (and cache) their raw files on the way when the network
    is allowed; offline, the bundled fixtures serve — either way the
    resulting artifact is byte-deterministic for a given ``seed``.
    """
    from repro.graph.io import save_npz
    from repro.workloads.registry import build_workload

    path = workload_cache_path(name)
    if path.exists() and not force:
        return path
    graph = build_workload(name, rng=seed)
    path.parent.mkdir(parents=True, exist_ok=True)
    save_npz(path, graph)
    return path
