"""Partition strategies for workload experiments: random vs adversarial.

The paper's guarantee (Theorem 1) holds only for the **random**
k-partition; E22+ measure what breaks when a real system shards edges by
something else.  Two adversaries model common non-random shardings:

* ``degree_sorted`` — edges sorted by the degree of their left endpoint
  (hubs first) and chunked contiguously, so all of a hub's edges land on
  one machine.  A greedy/maximal per-machine summary then keeps at most
  one edge per hub, with no alternative hub edges anywhere else in the
  composed union — the failure mode of §1.2.  This mimics "shard by
  popularity" or time-correlated arrival.
* ``community`` — left vertices split into k contiguous blocks and each
  edge routed to its left endpoint's block (locality sharding).  The
  composed union loses cross-machine augmenting structure on clustered
  graphs.

Both are deterministic functions of the graph, matching the
"oblivious-but-not-random" adversary the coreset definition quantifies
over.  :func:`partition_workload` dispatches by strategy name so
experiment grids can range over :data:`PARTITION_STRATEGIES` as an axis.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import Graph
from repro.graph.partition import (
    PartitionedGraph,
    partition_by_assignment,
    random_k_partition,
)
from repro.utils.rng import RandomState

__all__ = [
    "PARTITION_STRATEGIES",
    "community_partition",
    "degree_sorted_partition",
    "partition_workload",
]

PARTITION_STRATEGIES = ("random", "degree_sorted", "community")


def _left_endpoint(graph: Graph) -> np.ndarray:
    """Per-edge anchor vertex: the left endpoint for bipartite graphs,
    the min endpoint otherwise."""
    if graph.n_edges == 0:
        return np.empty(0, dtype=np.int64)
    if hasattr(graph, "n_left"):
        return graph.edges[:, 0]
    return graph.edges.min(axis=1)


def degree_sorted_partition(graph: Graph, k: int) -> PartitionedGraph:
    """Sort edges by anchor-vertex degree (descending, vertex id as the
    tie-break) and cut the order into ``k`` contiguous chunks."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    m = graph.n_edges
    assignment = np.zeros(m, dtype=np.int64)
    if m:
        anchor = _left_endpoint(graph)
        degree = np.bincount(anchor, minlength=graph.n_vertices)[anchor]
        # lexsort: last key is primary; negate degree for descending.
        order = np.lexsort((anchor, -degree))
        chunk = np.minimum(
            (np.arange(m, dtype=np.int64) * k) // m, k - 1
        )
        assignment[order] = chunk
    return partition_by_assignment(graph, assignment, k)


def community_partition(graph: Graph, k: int) -> PartitionedGraph:
    """Route each edge to its anchor vertex's block under a contiguous
    k-way split of the vertex ids (locality sharding)."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    m = graph.n_edges
    assignment = np.zeros(m, dtype=np.int64)
    if m:
        anchor = _left_endpoint(graph)
        n = int(getattr(graph, "n_left", graph.n_vertices))
        assignment = np.minimum((anchor * k) // max(1, n), k - 1)
    return partition_by_assignment(graph, assignment.astype(np.int64), k)


def partition_workload(
    graph: Graph, k: int, strategy: str, rng: RandomState = None
) -> PartitionedGraph:
    """Partition ``graph`` into ``k`` pieces under a named strategy.

    ``rng`` is consumed only by ``"random"``; the adversarial strategies
    are deterministic and ignore it.
    """
    if strategy == "random":
        return random_k_partition(graph, k, rng)
    if strategy == "degree_sorted":
        return degree_sorted_partition(graph, k)
    if strategy == "community":
        return community_partition(graph, k)
    raise ValueError(
        f"unknown partition strategy {strategy!r}; "
        f"available: {', '.join(PARTITION_STRATEGIES)}"
    )
