"""b-matching (AdWords) primitives over capacitated bipartite graphs.

A *b-matching* of a :class:`~repro.graph.capacity.CapacitatedBipartiteGraph`
is an edge subset using each left vertex ``u`` at most ``b(u)`` times and
each right vertex at most once — the offline AdWords/budgeted-allocation
shape, where left vertices are advertisers with budgets and right vertices
are impressions.

Three primitives mirror the uncapacitated trio (greedy / Hopcroft–Karp /
verify):

* :func:`greedy_b_matching` — one weight-descending pass, the per-machine
  summarizer in coreset protocols;
* :func:`exact_b_matching` — maximum-**cardinality** b-matching, exact via
  the left-cloning reduction (clone ``u`` into ``b(u)`` copies, run
  Hopcroft–Karp, fold the clones back);
* :func:`verify_b_matching` — capacity-respecting feasibility check, used
  by the solver facade's certificate verification.

All three speak **edge-index arrays** (row indices into ``graph.edges``),
which compose with ``graph.weights[idx]`` and ``graph.edges[idx]`` without
re-lookup.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.graph.capacity import CapacitatedBipartiteGraph
from repro.matching.hopcroft_karp import hopcroft_karp

__all__ = [
    "b_matching_weight",
    "edge_indices",
    "exact_b_matching",
    "greedy_b_matching",
    "verify_b_matching",
]


def edge_indices(graph: BipartiteGraph, edges: np.ndarray) -> np.ndarray:
    """Row indices in ``graph.edges`` of the given global-id edge array.

    Raises when an edge is not present in the graph.
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if edges.shape[0] == 0:
        return np.zeros(0, dtype=np.int64)
    n = max(graph.n_vertices, 1)
    lo = edges.min(axis=1).astype(np.int64)
    hi = edges.max(axis=1).astype(np.int64)
    keys = lo * np.int64(n) + hi
    idx = np.searchsorted(graph.edge_key_array, keys)
    ok = (idx < graph.n_edges) & (graph.edge_key_array[np.minimum(
        idx, graph.n_edges - 1
    )] == keys)
    if not ok.all():
        raise ValueError("edge array contains edges not present in the graph")
    return idx.astype(np.int64)


def greedy_b_matching(graph: CapacitatedBipartiteGraph) -> np.ndarray:
    """Weight-descending greedy b-matching; edge-index array.

    Ties break by canonical edge order, so the result is a pure function
    of the graph — no RNG involved.
    """
    m = graph.n_edges
    if m == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(-graph.weights, kind="stable")
    residual = graph.capacities.astype(np.int64).copy()
    right_free = np.ones(graph.n_right, dtype=bool)
    left = graph.edges[:, 0]
    right = graph.edges[:, 1] - graph.n_left
    chosen: list[int] = []
    for j in order.tolist():
        u = left[j]
        v = right[j]
        if residual[u] > 0 and right_free[v]:
            residual[u] -= 1
            right_free[v] = False
            chosen.append(j)
    return np.sort(np.asarray(chosen, dtype=np.int64))


def exact_b_matching(graph: CapacitatedBipartiteGraph) -> np.ndarray:
    """Maximum-cardinality b-matching; edge-index array.

    Left-cloning reduction: vertex ``u`` becomes ``b(u)`` clones, each
    original edge is replicated to every clone of its left endpoint, and
    Hopcroft–Karp solves the cloned instance exactly.  Each matched clone
    edge folds back to a distinct original edge (a right vertex is matched
    at most once), so the fold-back is injective and the result optimal.
    """
    m = graph.n_edges
    if m == 0:
        return np.zeros(0, dtype=np.int64)
    caps = graph.capacities.astype(np.int64)
    offsets = np.zeros(graph.n_left + 1, dtype=np.int64)
    np.cumsum(caps, out=offsets[1:])
    left = graph.edges[:, 0]
    right = graph.edges[:, 1] - graph.n_left
    rep = caps[left]
    total = int(rep.sum())
    # within-replication counter 0..rep[j]-1 for each original edge j
    start = np.repeat(np.cumsum(rep) - rep, rep)
    within = np.arange(total, dtype=np.int64) - start
    clone_rows = np.repeat(offsets[left], rep) + within
    clone_cols = np.repeat(right, rep)
    cloned = BipartiteGraph.from_pairs(
        int(offsets[-1]), graph.n_right, clone_rows, clone_cols
    )
    matched = hopcroft_karp(cloned)
    if matched.shape[0] == 0:
        return np.zeros(0, dtype=np.int64)
    # fold clones back: clone id -> original left vertex
    orig_left = np.searchsorted(offsets, matched[:, 0], side="right") - 1
    orig_right_global = (matched[:, 1] - cloned.n_left) + graph.n_left
    folded = np.stack([orig_left, orig_right_global], axis=1)
    return np.sort(edge_indices(graph, folded))


def verify_b_matching(
    graph: CapacitatedBipartiteGraph, indices: np.ndarray
) -> bool:
    """True iff the edge-index set is a feasible b-matching: valid distinct
    rows, every right vertex used at most once, every left vertex within
    its capacity."""
    idx = np.asarray(indices, dtype=np.int64).reshape(-1)
    if idx.size == 0:
        return True
    if idx.min() < 0 or idx.max() >= graph.n_edges:
        return False
    if np.unique(idx).size != idx.size:
        return False
    left = graph.edges[idx, 0]
    right = graph.edges[idx, 1]
    if np.bincount(right - graph.n_left, minlength=graph.n_right).max() > 1:
        return False
    usage = np.bincount(left, minlength=graph.n_left)
    return bool((usage <= graph.capacities).all())


def b_matching_weight(
    graph: CapacitatedBipartiteGraph, indices: np.ndarray
) -> float:
    """Total weight of the edges at the given indices."""
    idx = np.asarray(indices, dtype=np.int64).reshape(-1)
    if idx.size == 0:
        return 0.0
    return float(graph.weights[idx].sum())
