"""Dataset-backed workloads: real-world bipartite degree distributions.

Two loaders in the CORL exemplar's mold:

* **gmission** — spatial crowdsourcing: tasks (left) × workers (right) with
  a payoff per feasible pair.  Heavy-tailed on both sides.
* **movielens** — movies (left) × users (right) with ratings as weights.
  A classic hub-dominated bipartite graph.

Acquisition pipeline (per loader):

1. **cache** — a raw file under ``~/.cache/repro/raw/`` is used as-is;
2. **download** — when the network is allowed (:func:`repro.workloads.cache.
   allow_network`), the raw file is fetched from the upstream URL and
   cached; any failure falls through silently to
3. **fixture** — a bundled, frozen edge-list sample under
   ``repro/workloads/data/`` (committed to the repo), so CI and air-gapped
   runs are fully deterministic and never touch the network.

Scaling: the requested instance size rarely matches the raw data.  Smaller
instances take a seeded subsample of left vertices; larger instances use
**degree-sequence replay** — resample the empirical left-degree sequence
and re-attach stubs with the empirical right-popularity profile
(:func:`repro.graph.generators.degree_sequence_bipartite`) — which
preserves the real degree distribution at any scale.  Either path is a
pure function of the RNG, so experiments stay bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.graph.capacity import WeightedBipartiteGraph
from repro.workloads.cache import allow_network, raw_cache_path
from repro.workloads.registry import workload

__all__ = [
    "DatasetEdges",
    "dataset_edges",
    "parse_edge_tsv",
]

_DATA_DIR = Path(__file__).resolve().parent / "data"

#: Upstream locations of the raw files.  Only consulted when the cache
#: misses and the network is allowed; every failure falls back to the
#: bundled fixture.
_DATASETS = {
    "gmission": {
        "url": "https://raw.githubusercontent.com/alomrani/CORL/master/"
               "data/gmission/edges.txt",
        "raw_name": "gmission_edges.txt",
        "fixture": "gmission_small.tsv",
        "source": "gMission spatial crowdsourcing (tasks x workers)",
    },
    "movielens": {
        "url": "https://files.grouplens.org/datasets/movielens/"
               "ml-100k/u.data",
        "raw_name": "movielens_100k.data",
        "fixture": "movielens_small.tsv",
        "source": "MovieLens ratings (movies x users), GroupLens ml-100k",
    },
}


@dataclass(frozen=True)
class DatasetEdges:
    """Raw bipartite edges of one dataset, densely re-indexed.

    ``left``/``right`` are side-local int64 indices, ``weight`` the per-edge
    value (payoff / rating), and ``origin`` records which acquisition step
    produced them (``"cache"``, ``"download"``, or ``"fixture"``).
    """

    n_left: int
    n_right: int
    left: np.ndarray
    right: np.ndarray
    weight: np.ndarray
    origin: str


def parse_edge_tsv(
    text: str,
) -> tuple[tuple[np.ndarray, np.ndarray, np.ndarray], int, int]:
    """Parse ``left<sep>right<sep>weight`` lines (tab/comma/``::``/space
    separated, ``#`` comments), densely re-indexing both sides.

    One parser covers the bundled fixtures *and* the common raw formats
    (gMission CSV rows, MovieLens ``u.data`` / ``::``-separated ratings —
    extra columns such as timestamps are ignored).
    """
    lefts: list[int] = []
    rights: list[int] = []
    weights: list[float] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith(("#", "%")):
            continue
        for sep in ("::", "\t", ",", ";"):
            if sep in line:
                parts = [p for p in line.split(sep) if p.strip()]
                break
        else:
            parts = line.split()
        if len(parts) < 2:
            raise ValueError(f"unparsable edge line: {line!r}")
        lefts.append(int(float(parts[0])))
        rights.append(int(float(parts[1])))
        weights.append(float(parts[2]) if len(parts) > 2 else 1.0)
    if not lefts:
        raise ValueError("edge list contains no edges")
    left = np.asarray(lefts, dtype=np.int64)
    right = np.asarray(rights, dtype=np.int64)
    weight = np.asarray(weights, dtype=np.float64)
    # Dense re-index: raw ids are arbitrary (1-based, sparse, hashed).
    left_ids, left_idx = np.unique(left, return_inverse=True)
    right_ids, right_idx = np.unique(right, return_inverse=True)
    # Weights must be strictly positive for the weighted containers.
    weight = np.maximum(weight, 1e-9)
    return (
        left_idx.astype(np.int64),
        right_idx.astype(np.int64),
        weight,
    ), int(left_ids.shape[0]), int(right_ids.shape[0])


def _try_download(name: str) -> str | None:
    """Fetch the raw dataset into the cache; None on any failure."""
    meta = _DATASETS[name]
    raw = raw_cache_path(meta["raw_name"])
    if raw.exists():
        return raw.read_text(errors="replace")
    if not allow_network():
        return None
    try:  # pragma: no cover - network path is never exercised in CI
        from urllib.request import urlopen

        with urlopen(meta["url"], timeout=30) as resp:
            text = resp.read().decode("utf-8", errors="replace")
        raw.parent.mkdir(parents=True, exist_ok=True)
        raw.write_text(text)
        return text
    except Exception:
        return None


def dataset_edges(name: str) -> DatasetEdges:
    """The raw (re-indexed) edges of dataset ``name``: cache, then
    download, then the bundled fixture."""
    if name not in _DATASETS:
        raise ValueError(
            f"unknown dataset {name!r}; available: {', '.join(_DATASETS)}"
        )
    meta = _DATASETS[name]
    origin = "cache" if raw_cache_path(meta["raw_name"]).exists() else "download"
    text = _try_download(name)
    if text is None:
        origin = "fixture"
        text = (_DATA_DIR / meta["fixture"]).read_text()
    (left, right, weight), n_left, n_right = parse_edge_tsv(text)
    return DatasetEdges(
        n_left=n_left, n_right=n_right,
        left=left, right=right, weight=weight, origin=origin,
    )


# --------------------------------------------------------------------- #
# building: subsample down, degree-replay up
# --------------------------------------------------------------------- #
def _build_dataset_graph(
    rng: np.random.Generator,
    name: str,
    n_left: int | None,
    n_right: int | None,
) -> WeightedBipartiteGraph:
    """Materialize dataset ``name`` at the requested size.

    ``None`` sizes keep the raw data's natural shape.  A smaller ``n_left``
    takes a seeded subsample of left vertices (real edges, real weights); a
    larger one replays the empirical degree sequence at scale with weights
    resampled from the empirical weight distribution.
    """
    data = dataset_edges(name)
    if n_left is None or (n_left == data.n_left
                          and (n_right is None or n_right == data.n_right)):
        return WeightedBipartiteGraph.from_pairs_weighted(
            data.n_left, data.n_right, data.left, data.right, data.weight
        )
    if n_left <= data.n_left and (n_right is None or n_right <= data.n_right):
        # Subsample: keep a random left subset (and right subset if asked),
        # re-indexing densely.  Isolated vertices stay — real datasets
        # have them, and the coresets must cope.
        n_right_eff = data.n_right if n_right is None else n_right
        keep_l = np.sort(rng.choice(data.n_left, size=n_left, replace=False))
        keep_r = np.sort(
            rng.choice(data.n_right, size=n_right_eff, replace=False)
        )
        l_map = np.full(data.n_left, -1, dtype=np.int64)
        l_map[keep_l] = np.arange(n_left)
        r_map = np.full(data.n_right, -1, dtype=np.int64)
        r_map[keep_r] = np.arange(n_right_eff)
        mask = (l_map[data.left] >= 0) & (r_map[data.right] >= 0)
        if not mask.any():
            return WeightedBipartiteGraph(n_left, n_right_eff)
        return WeightedBipartiteGraph.from_pairs_weighted(
            n_left, n_right_eff,
            l_map[data.left[mask]], r_map[data.right[mask]],
            data.weight[mask],
        )
    # Replay: bootstrap the left degree sequence, attach by empirical
    # right popularity, resample weights empirically.
    from repro.graph.generators import degree_sequence_bipartite

    n_right_eff = (
        max(1, round(data.n_right * n_left / data.n_left))
        if n_right is None else n_right
    )
    emp_degrees = np.bincount(data.left, minlength=data.n_left)
    degrees = rng.choice(emp_degrees, size=n_left, replace=True)
    popularity = np.bincount(data.right, minlength=data.n_right).astype(
        np.float64
    )
    # Stretch/shrink the popularity profile to the new right side by
    # resampling it (sorted, so the hub structure is preserved).
    profile = np.sort(popularity)[::-1]
    idx = np.minimum(
        (np.arange(n_right_eff) * profile.shape[0]) // n_right_eff,
        profile.shape[0] - 1,
    )
    right_weights = np.maximum(profile[idx], 1.0)
    base = degree_sequence_bipartite(
        degrees, n_right_eff, right_weights=right_weights, rng=rng
    )
    weights = rng.choice(data.weight, size=base.n_edges, replace=True)
    return WeightedBipartiteGraph(
        base.n_left, base.n_right, base.edges, weights, validated=True
    )


@workload(
    "gmission",
    kind="dataset",
    description="gMission tasks x workers with payoffs; heavy-tailed both "
                "sides (offline fixture bundled; degree replay scales)",
    weighted=True,
    source=_DATASETS["gmission"]["source"],
    params={"n_left": None, "n_right": None},
)
def _workload_gmission(rng, n_left, n_right):
    """Streams: one — subsample/replay randomness."""
    return _build_dataset_graph(rng, "gmission", n_left, n_right)


@workload(
    "movielens",
    kind="dataset",
    description="MovieLens movies x users with ratings; hub-dominated "
                "(offline fixture bundled; degree replay scales)",
    weighted=True,
    source=_DATASETS["movielens"]["source"],
    params={"n_left": None, "n_right": None},
)
def _workload_movielens(rng, n_left, n_right):
    """Streams: one — subsample/replay randomness."""
    return _build_dataset_graph(rng, "movielens", n_left, n_right)
