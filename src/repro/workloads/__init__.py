"""Workload subsystem: named graph families for experiments and the CLI.

The workload counterpart of :mod:`repro.solve` — a ``@workload`` registry
of synthetic families (preferential attachment, capacitated AdWords,
power-law, clustered) and dataset-backed loaders (gMission, MovieLens)
with an offline-first acquisition pipeline (bundled fixtures, optional
cached downloads under ``~/.cache/repro``), plus the partition strategies
and b-matching primitives the workload experiments (E22+) run on.
"""

from repro.workloads.bmatching import (
    b_matching_weight,
    exact_b_matching,
    greedy_b_matching,
    verify_b_matching,
)
from repro.workloads.cache import (
    allow_network,
    cache_dir,
    fetch_workload,
    workload_cache_path,
)
from repro.workloads.partitions import (
    PARTITION_STRATEGIES,
    community_partition,
    degree_sorted_partition,
    partition_workload,
)
from repro.workloads.registry import (
    UnknownWorkloadError,
    WorkloadSpec,
    all_workloads,
    build_workload,
    get_workload,
    workload,
    workload_ids,
)

__all__ = [
    "PARTITION_STRATEGIES",
    "UnknownWorkloadError",
    "WorkloadSpec",
    "all_workloads",
    "allow_network",
    "b_matching_weight",
    "build_workload",
    "cache_dir",
    "community_partition",
    "degree_sorted_partition",
    "exact_b_matching",
    "fetch_workload",
    "get_workload",
    "greedy_b_matching",
    "partition_workload",
    "verify_b_matching",
    "workload",
    "workload_cache_path",
    "workload_ids",
]
