"""Synthetic workload families: preferential attachment, capacitated
AdWords instances, and named wrappers over the graph-layer generators.

The BA (Barabási–Albert-style) family follows the online-matching
literature's bipartite variant: right vertices arrive one at a time, draw
a target degree ``Binomial(u, p/u)``, and attach each stub to a left
vertex with probability proportional to ``1 + current degree`` — so early
popularity compounds into hubs.  ``ba_adwords`` is the same topology with
per-left-vertex capacities (b-matching / AdWords budgets) and optional
geometric or uniform edge weights.

Everything here is CSR-native (arrays in, arrays out), takes an
``np.random.Generator``, and is registered by name in
:mod:`repro.workloads.registry`.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.graph.capacity import CapacitatedBipartiteGraph, WeightedBipartiteGraph
from repro.graph.generators import clustered_bipartite, power_law_bipartite
from repro.workloads.registry import workload

__all__ = [
    "ba_bipartite",
    "sample_edge_weights",
]

WEIGHT_SCHEMES = ("unit", "uniform", "geometric")


def ba_bipartite(
    n_left: int,
    n_right: int,
    p: float,
    rng: np.random.Generator,
) -> BipartiteGraph:
    """Preferential-attachment bipartite graph.

    Each of the ``n_right`` arriving vertices draws a degree
    ``d ~ Binomial(n_left, p / n_left)`` (mean ``p``) and attaches its
    stubs without replacement to left vertices sampled with probability
    proportional to ``1 + degree`` at arrival time.  The sequential
    attachment loop is over right vertices only; per-vertex work is
    vectorized.
    """
    if n_left <= 0 or n_right <= 0:
        raise ValueError("n_left and n_right must be positive")
    if not 0.0 < p <= n_left:
        raise ValueError(f"p must be in (0, n_left], got {p}")
    # 1 + degree, updated as stubs land.
    attraction = np.ones(n_left, dtype=np.float64)
    degrees = rng.binomial(n_left, p / n_left, size=n_right)
    np.clip(degrees, 0, n_left, out=degrees)
    rows_parts: list[np.ndarray] = []
    cols_parts: list[np.ndarray] = []
    for v in range(n_right):
        d = int(degrees[v])
        if d == 0:
            continue
        probs = attraction / attraction.sum()
        chosen = rng.choice(n_left, size=d, replace=False, p=probs)
        attraction[chosen] += 1.0
        rows_parts.append(chosen.astype(np.int64))
        cols_parts.append(np.full(d, v, dtype=np.int64))
    if not rows_parts:
        return BipartiteGraph(n_left, n_right)
    rows = np.concatenate(rows_parts)
    cols = np.concatenate(cols_parts)
    return BipartiteGraph.from_pairs(n_left, n_right, rows, cols)


def sample_edge_weights(
    n_edges: int, scheme: str, rng: np.random.Generator
) -> np.ndarray:
    """Per-edge weights under one of :data:`WEIGHT_SCHEMES`.

    ``unit`` is all-ones, ``uniform`` is U(0.1, 1.0), ``geometric`` is
    ``0.5 ** Geometric(0.5)`` — a heavy mass at 0.5 with an exponential
    tail toward 0, the standard proxy for bid distributions.
    """
    if scheme not in WEIGHT_SCHEMES:
        raise ValueError(
            f"weight scheme must be one of {WEIGHT_SCHEMES}, got {scheme!r}"
        )
    if scheme == "unit":
        return np.ones(n_edges, dtype=np.float64)
    if scheme == "uniform":
        return rng.uniform(0.1, 1.0, size=n_edges)
    return 0.5 ** rng.geometric(0.5, size=n_edges).astype(np.float64)


@workload(
    "ba",
    kind="synthetic",
    description="preferential-attachment bipartite graph (right vertices "
                "arrive, attach prop. to 1+degree; mean degree p)",
    params={"u": 300, "v": 600, "p": 3.0, "weights": "unit"},
)
def _workload_ba(rng, u, v, p, weights):
    graph = ba_bipartite(int(u), int(v), float(p), rng)
    if weights == "unit":
        return graph
    w = sample_edge_weights(graph.n_edges, str(weights), rng)
    return WeightedBipartiteGraph(
        graph.n_left, graph.n_right, graph.edges, w, validated=True
    )


@workload(
    "ba_adwords",
    kind="synthetic",
    description="capacitated AdWords variant of `ba`: per-left-vertex "
                "budgets b(u) ~ UniformInt[b_min, b_max], geometric or "
                "uniform edge weights (b-matching)",
    weighted=True,
    capacitated=True,
    params={
        "u": 200, "v": 800, "p": 4.0,
        "b_min": 1, "b_max": 5, "weights": "geometric",
    },
)
def _workload_ba_adwords(rng, u, v, p, b_min, b_max, weights):
    if not 1 <= int(b_min) <= int(b_max):
        raise ValueError(f"need 1 <= b_min <= b_max, got {b_min}..{b_max}")
    graph = ba_bipartite(int(u), int(v), float(p), rng)
    w = sample_edge_weights(graph.n_edges, str(weights), rng)
    capacities = rng.integers(int(b_min), int(b_max) + 1, size=graph.n_left)
    return CapacitatedBipartiteGraph(
        graph.n_left, graph.n_right, graph.edges, w,
        capacities=capacities, validated=True,
    )


@workload(
    "power_law",
    kind="synthetic",
    description="configuration-model bipartite graph with Pareto left "
                "degrees (tail exponent `exponent`, mean `avg_degree`)",
    params={"u": 400, "v": 400, "avg_degree": 4.0, "exponent": 2.5},
)
def _workload_power_law(rng, u, v, avg_degree, exponent):
    return power_law_bipartite(
        int(u), int(v), float(avg_degree), float(exponent), rng=rng
    )


@workload(
    "clustered",
    kind="synthetic",
    description="stochastic-block bipartite graph: dense within-community "
                "blocks, sparse cross edges (locality adversary's friend)",
    params={"blocks": 8, "block_size": 40, "p_in": 0.3, "p_out": 0.005},
)
def _workload_clustered(rng, blocks, block_size, p_in, p_out):
    return clustered_bipartite(
        int(blocks), int(block_size), float(p_in), float(p_out), rng=rng
    )
