"""The named workload registry: ``@workload``-decorated graph families.

The workload counterpart of :mod:`repro.solve.registry`: every graph family
the experiments run on — synthetic generators *and* dataset-backed loaders —
is registered once as a module-level builder function carrying metadata
(kind, parameter defaults, weighted/capacitated flags, provenance), and
every consumer resolves workloads **by name**:

* the CLI: ``repro workloads --list`` / ``--info`` / ``--fetch``, and the
  ``repro solve`` graph-spec syntax ``workload:NAME[:k=v,...]``;
* the experiments: E22+ build their graphs through
  :func:`build_workload`, so a sweep axis can range over workload names;
* the cache: :mod:`repro.workloads.cache` materializes any workload at its
  default parameters as a single ``.npz`` artifact.

Builder contract
----------------
A builder is a module-level function ``fn(rng, **params) -> graph`` where
``rng`` is an ``np.random.Generator`` (already coerced — builders never see
raw seeds and never touch global RNG state) and the return value is a
:class:`~repro.graph.bipartite.BipartiteGraph` or one of its weighted /
capacitated refinements (:mod:`repro.graph.capacity`).  Builders must be
deterministic given the generator state and must work **offline**: dataset
loaders fall back to bundled fixtures when the network is unavailable or
``$REPRO_OFFLINE`` is set (:mod:`repro.workloads.datasets`).  Being
module-level keeps every :class:`WorkloadSpec` picklable, so workload names
can ride inside experiment trials to worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.utils.rng import RandomState, as_generator

__all__ = [
    "DuplicateWorkloadError",
    "UnknownWorkloadError",
    "WorkloadSpec",
    "all_workloads",
    "build_workload",
    "get_workload",
    "workload",
    "workload_ids",
]

KINDS = ("synthetic", "dataset")


class UnknownWorkloadError(LookupError):
    """No workload is registered under the requested name."""


class DuplicateWorkloadError(ValueError):
    """Two builders tried to claim the same workload name."""


BuilderFn = Callable[..., Any]


@dataclass(frozen=True)
class WorkloadSpec:
    """One registered workload family: metadata plus the builder.

    ``params`` documents the builder's keyword parameters and their
    defaults; :func:`build_workload` merges caller overrides over them and
    rejects unknown names.  ``source`` names the upstream dataset (URL or
    citation) for ``kind="dataset"`` families; synthetic families leave it
    ``None``.
    """

    name: str
    kind: str
    description: str
    fn: BuilderFn
    weighted: bool = False
    capacitated: bool = False
    source: Optional[str] = None
    params: Mapping[str, Any] = field(default_factory=dict)

    def info(self) -> Dict[str, Any]:
        """The metadata dict ``repro workloads --info`` renders."""
        return {
            "name": self.name,
            "kind": self.kind,
            "weighted": self.weighted,
            "capacitated": self.capacitated,
            "source": self.source,
            "params": dict(self.params),
            "description": self.description,
        }

    def build(self, rng: RandomState = None, **params: Any):
        """Build one instance of this workload (see :func:`build_workload`)."""
        unknown = sorted(set(params) - set(self.params))
        if unknown:
            raise ValueError(
                f"workload {self.name!r} has no parameter(s) "
                f"{', '.join(unknown)}; settable: "
                f"{', '.join(sorted(self.params)) or '(none)'}"
            )
        merged = {**self.params, **params}
        return self.fn(as_generator(rng), **merged)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WorkloadSpec({self.name!r}, kind={self.kind!r}, "
            f"weighted={self.weighted}, capacitated={self.capacitated})"
        )


_REGISTRY: Dict[str, WorkloadSpec] = {}


def workload(
    name: str,
    *,
    kind: str,
    description: str,
    weighted: bool = False,
    capacitated: bool = False,
    source: str | None = None,
    params: Mapping[str, Any] | None = None,
) -> Callable[[BuilderFn], BuilderFn]:
    """Register a module-level builder function as a named workload."""
    if kind not in KINDS:
        raise ValueError(f"kind must be one of {KINDS}, got {kind!r}")
    key = name.strip().lower()

    def decorate(fn: BuilderFn) -> BuilderFn:
        if key in _REGISTRY:
            raise DuplicateWorkloadError(
                f"workload name {key!r} is already registered "
                f"(by {_REGISTRY[key].fn.__name__})"
            )
        _REGISTRY[key] = WorkloadSpec(
            name=key,
            kind=kind,
            description=description,
            fn=fn,
            weighted=weighted,
            capacitated=capacitated,
            source=source,
            params=dict(params or {}),
        )
        return fn

    return decorate


def _ensure_registered() -> None:
    # Builders live in families.py / datasets.py and register on import;
    # make lookups work even when the caller imported only this module.
    import repro.workloads.datasets  # noqa: F401
    import repro.workloads.families  # noqa: F401


def get_workload(name: str) -> WorkloadSpec:
    """Look up a spec by name (case-insensitive)."""
    _ensure_registered()
    key = name.strip().lower()
    if key not in _REGISTRY:
        raise UnknownWorkloadError(
            f"unknown workload {name!r}; available: {', '.join(_REGISTRY)}"
        )
    return _REGISTRY[key]


def workload_ids() -> List[str]:
    """All registered names, in registration order."""
    _ensure_registered()
    return list(_REGISTRY)


def all_workloads() -> List[WorkloadSpec]:
    """All registered specs, in registration order."""
    _ensure_registered()
    return list(_REGISTRY.values())


def build_workload(name: str, rng: RandomState = None, **params: Any):
    """Build one instance of the named workload.

    ``rng`` follows the library-wide :data:`~repro.utils.rng.RandomState`
    convention (int seed, ``Generator``, ``SeedSequence``, or ``None`` for
    fresh entropy); ``params`` overrides the registered defaults, with
    unknown names rejected so typos fail loudly.
    """
    return get_workload(name).build(rng, **params)
