"""E23 — the capacitated (AdWords / b-matching) coreset story on the
`ba_adwords` workload: per-piece greedy b-matchings composed and solved
exactly on the union, across partition strategies.

The assertable claims: every composed b-matching is feasible under the
budgets (verify_b_matching), and the random partition beats both
adversarial placements."""

from _common import emit, run_once
from repro.experiments.registry import get_experiment


def test_e23_bmatching_coreset(benchmark):
    table = run_once(
        benchmark,
        lambda: get_experiment("e23").run(n_trials=3),
    )
    emit(table, "e23_bmatching_coreset")
    assert table.rows
    for row in table.rows:
        assert row["feasible"] is True
        assert 1.0 <= row["r_random"] <= row["r_degree_sorted"] + 1e-9
