"""E16 — §1.3 connection: random-arrival streaming.

Greedy's ratio improves from adversarial to random arrival, and the
two-phase (KMM-style) matcher exploits random arrival to beat greedy —
the single-machine shadow of random k-partitioning."""

from _common import emit, run_once
from repro.experiments.registry import get_experiment


def test_e16_streaming(benchmark):
    table = run_once(
        benchmark,
        lambda: get_experiment("e16").run(n=8000, n_trials=3),
    )
    emit(table, "e16_streaming")
    rows = {r["order"]: r for r in table.rows}
    # Maximality floor.
    for r in table.rows:
        assert r["greedy_ratio"] >= 0.5
    # Random arrival beats adversarial arrival for greedy.
    assert rows["random"]["greedy_ratio"] > rows["adversarial"]["greedy_ratio"]
    # Two-phase beats greedy on random arrival.
    assert rows["random"]["two_phase_ratio"] > rows["random"]["greedy_ratio"]
    # Semi-streaming memory: O(n) words.
    for r in table.rows:
        assert r["memory_words_over_n"] <= 4
