"""E22 — coreset quality under random vs adversarial partitions on the
registered workloads (docs/WORKLOADS.md), including the dataset-backed
real degree distributions.

The assertable claim: the paper's random-partition premise matters on
real inputs — on every workload the random k-partition's ratio is no
worse than the adversarial ones, and on the real-degree-distribution
workloads (gmission/movielens) the adversarial gap is strictly
positive."""

import os

from _common import emit, run_once
from repro.experiments.registry import get_experiment

# The table must regenerate identically on any machine, networked or
# not: pin the bundled fixtures rather than whatever a cache holds.
os.environ.setdefault("REPRO_OFFLINE", "1")


def test_e22_workload_partitions(benchmark):
    table = run_once(
        benchmark,
        lambda: get_experiment("e22").run(n_trials=3),
    )
    emit(table, "e22_workload_partitions")
    assert table.rows
    for row in table.rows:
        assert row["r_random"] >= 1.0
        assert row["r_random"] <= row["r_degree_sorted"] + 1e-9
    real = [r for r in table.rows if r["workload"] in ("gmission", "movielens")]
    assert real and all(r["adversarial_gap"] > 0 for r in real)
