#!/usr/bin/env python
"""Standalone substrate perf harness — the script form of ``repro bench``.

Runs the pool-lifecycle, piece-transfer, and matching-scan sections of
:mod:`repro.experiments.bench` and writes ``BENCH_substrate.json``.  Not
collected by pytest (the tier-1 suite and the ``bench_e*.py`` experiment
benchmarks have their own entry points); invoke it directly when iterating
on the substrate without an installed console script:

    PYTHONPATH=src python benchmarks/perf.py --quick --check

``assert_substrate_claims`` is importable for ad-hoc use: it raises
``AssertionError`` naming the first violated claim of a bench document,
which is exactly what the ``substrate-perf`` CI job enforces via
``repro bench --quick --check``.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Allow running from a source checkout without an installed package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:  # pragma: no cover
    sys.path.insert(0, str(_SRC))

from repro.experiments.bench import main, run_substrate_bench  # noqa: E402

__all__ = ["assert_substrate_claims", "main", "run_substrate_bench"]


def assert_substrate_claims(doc: dict) -> None:
    """Raise ``AssertionError`` on the first violated substrate claim."""
    checks = doc["checks"]
    assert checks["all_outputs_identical"], (
        "a backend or transfer variant produced different outputs — the "
        "determinism contract is broken"
    )
    assert checks["persistent_pool_faster_than_cold"], (
        "persistent process pools were not faster than per-call pools"
    )
    assert checks["solver_facade_all_verified"], (
        "a repro.solve facade solver returned an unverified certificate"
    )
    if doc["mode"] == "full":
        assert checks["shared_transfer_lower_overhead_at_largest"], (
            "shared-memory transfer did not beat pickled transfer at the "
            "largest scenario"
        )


if __name__ == "__main__":
    raise SystemExit(main())
