"""E18 — robustness sweep: both coresets across five graph families.

The theorems are worst-case over graphs (randomness is only in the
partitioning), so the guarantees must hold on every family."""

import math

from _common import emit, run_once
from repro.experiments.registry import get_experiment


def test_e18_families(benchmark):
    n = 4000
    table = run_once(
        benchmark,
        lambda: get_experiment("e18").run(n=n, k=8, n_trials=3),
    )
    emit(table, "e18_families")
    assert len(table.rows) == 5
    for row in table.rows:
        assert row["matching_ratio_max"] <= 9, row["family"]
        assert row["matching_ratio_mean"] <= 3, row["family"]
        assert row["vc_ratio_mean"] <= 4 * math.log2(n), row["family"]
        assert row["vc_feasible"], row["family"]
