"""E5 — Theorem 3: matching coresets need Ω(n/α²) edges.

Budget-limited coresets on D_Matching: achieved ratio crosses α exactly when
the per-machine budget crosses ~n/α².
"""

from _common import emit, run_once
from repro.experiments.registry import get_experiment


def test_e5_size_threshold(benchmark):
    n, alpha, k = 8000, 8.0, 8
    table = run_once(
        benchmark,
        lambda: get_experiment("e5").run(
            n=n, alpha=alpha, k=k,
            budget_factors=(0.125, 0.5, 1.0, 4.0, 16.0), n_trials=3,
        ),
    )
    emit(table, "e5_matching_lb")
    ratios = table.column("ratio_mean")
    # Starved budgets cannot beat alpha; generous budgets can.
    assert ratios[0] > alpha
    assert ratios[-1] < alpha
    # Monotone improvement with budget.
    assert all(a >= b for a, b in zip(ratios, ratios[1:]))
    # Hidden-edge recovery grows with budget (the counting argument).
    rec = table.column("hidden_recovered_mean")
    assert all(a <= b for a, b in zip(rec, rec[1:]))
