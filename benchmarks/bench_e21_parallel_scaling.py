"""E21 — parallel scaling: serial vs process-pool execution of the E8
MapReduce matching workload, with outputs asserted bit-identical per seed.

The wall-clock columns measure this machine; the assertable claim is the
determinism contract (docs/PARALLELISM.md): changing the executor backend
never changes a single output bit."""

from _common import emit, run_once
from repro.experiments.registry import get_experiment


def test_e21_parallel_scaling(benchmark):
    table = run_once(
        benchmark,
        lambda: get_experiment("e21").run(n=4000, avg_degree=24.0,
                                            n_trials=3),
    )
    emit(table, "e21_parallel_scaling")
    rows = {r["executor"]: r for r in table.rows}
    assert set(rows) == {"serial", "processes"}
    # The contract: per seed, every backend reproduces serial bit for bit.
    assert all(r["identical_to_serial"] for r in table.rows)
    assert all(r["wall_s_mean"] > 0 for r in table.rows)
    # No speedup floor is asserted — CI machines may have a single core;
    # the speedup column is the measurement the table exists to report.
