"""E13 — Results 1 and 3: total communication of the coreset protocols is
Õ(nk), far below send-everything on dense graphs, with Õ(n) per player."""

from _common import emit, run_once
from repro.experiments.registry import get_experiment


def test_e13_scaling(benchmark):
    n = 4000
    table = run_once(
        benchmark,
        lambda: get_experiment("e13").run(
            n=n, k_values=(2, 4, 8, 16, 32), n_trials=3
        ),
    )
    emit(table, "e13_communication")
    for row in table.rows:
        # Coresets beat send-everything on this dense workload.
        assert row["matching_total_bits"] < row["naive_total_bits"]
        # Per-player cost stays Õ(n): each machine ships ≤ n/2 matching
        # edges = ≤ n/2 · 2·log2(n) bits.
        import math

        assert row["max_player_bits"] <= n * math.log2(n)
    # Matching total grows sublinearly with k but stays Õ(nk): the
    # normalized column is O(log n) and decreasing.
    norm = table.column("matching_bits_per_nk")
    assert all(v <= 2 * 12 for v in norm)  # 2·log2(4000) ≈ 24
