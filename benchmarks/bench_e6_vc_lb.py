"""E6 — Theorem 4: vertex-cover coresets need Ω(n/α) size.

Budget-limited coresets on D_VC: feasibility (covering the planted edge e*)
collapses when the budget drops below ~n/α.
"""

from _common import emit, run_once
from repro.experiments.registry import get_experiment


def test_e6_size_threshold(benchmark):
    n, alpha, k = 8000, 8.0, 8
    table = run_once(
        benchmark,
        lambda: get_experiment("e6").run(
            n=n, alpha=alpha, k=k,
            budget_factors=(0.05, 0.25, 1.0, 4.0), n_trials=5,
        ),
    )
    emit(table, "e6_vc_lb")
    feas = table.column("p_feasible")
    # Starved budget: almost never feasible. Full budget: always.
    assert feas[0] <= 0.4
    assert feas[-1] == 1.0
    # Monotone in budget.
    assert all(a <= b + 1e-9 for a, b in zip(feas, feas[1:]))
