"""E15 — ablation: summarizer × combiner grid on one fixed workload.

Shows where each design choice matters: exact vs greedy combining, maximum
vs maximal vs subsampled summaries, and the cost of the naive baseline."""

from _common import emit, run_once
from repro.experiments.registry import get_experiment


def test_e15_ablation(benchmark):
    table = run_once(
        benchmark,
        lambda: get_experiment("e15").run(n=8000, k=8, n_trials=3),
    )
    emit(table, "e15_ablation")
    rows = {r["variant"]: r for r in table.rows}
    # Exact combining beats greedy combining (or ties).
    assert rows["maximum+exact"]["ratio_mean"] <= \
        rows["maximum+greedy"]["ratio_mean"] + 1e-9
    # Subsampling trades ratio for bits.
    assert rows["subsampled(alpha=4)+exact"]["total_bits_mean"] < \
        rows["maximum+exact"]["total_bits_mean"]
    assert rows["subsampled(alpha=4)+exact"]["ratio_mean"] > \
        rows["maximum+exact"]["ratio_mean"]
    # Naive is exact but pays the most bits on this workload.
    assert rows["send-everything"]["ratio_mean"] == 1.0
