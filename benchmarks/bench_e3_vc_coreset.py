"""E3 — Theorem 2: the peeling coreset is O(log n)-approximate for vertex
cover with O(n log n)-size messages."""

import math

from _common import emit, run_once
from repro.experiments.registry import get_experiment


def test_e3_vc_coreset(benchmark):
    table = run_once(
        benchmark,
        lambda: get_experiment("e3").run(
            n_values=(2000, 8000), k_values=(4, 16), n_trials=3
        ),
    )
    emit(table, "e3_vc_coreset")
    assert all(table.column("feasible"))
    for row in table.rows:
        # Ratio within the O(log n) envelope (generous constant 4).
        assert row["ratio_max"] <= 4 * row["log2_n"]
        # Message sizes within the O(n log n) envelope.
        assert row["residual_edges_mean"] <= 8 * row["n"] * row["log2_n"]
