"""E10 — Remark 5.8: grouped vertex-cover coresets give an α-approximation
with Õ(nk/α) communication (tight by Theorem 6)."""

from _common import emit, run_once
from repro.experiments.registry import get_experiment


def test_e10_alpha_sweep(benchmark):
    table = run_once(
        benchmark,
        lambda: get_experiment("e10").run(
            n=8000, k=8, alpha_values=(16.0, 32.0, 64.0, 128.0), n_trials=3
        ),
    )
    emit(table, "e10_grouped_vc")
    assert all(table.column("feasible"))
    # Ratio stays within the claimed O(alpha) (generous: ≤ alpha itself —
    # on these workloads grouping wastes much less than the bound).
    for row in table.rows:
        assert row["ratio_mean"] <= row["alpha"]
    # Communication decreases as alpha grows (Õ(nk/alpha) shape; log
    # factors dominate at laptop scale so we assert monotonicity, not the
    # exact exponent).
    bits = table.column("total_bits_mean")
    assert all(a >= b for a, b in zip(bits, bits[1:]))
