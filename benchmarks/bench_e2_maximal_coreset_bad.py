"""E2 — §1.2: a maximal (not maximum) matching coreset is Ω(k)-approximate.

Regenerates the separation table on the hidden-matching-with-hubs instance:
the worst-case maximal matching collapses linearly in k while the Theorem 1
coreset stays at ratio ~1 on the same partitions.
"""

from _common import emit, run_once
from repro.experiments.registry import get_experiment


def test_e2_separation(benchmark):
    table = run_once(
        benchmark,
        lambda: get_experiment("e2").run(
            k_values=(4, 8, 16, 32), width=64, n_trials=3
        ),
    )
    emit(table, "e2_maximal_bad")
    bad = table.column("maximal_ratio")
    good = table.column("maximum_ratio")
    ks = table.column("k")
    # Ω(k) growth: ratio at k=32 is ≥ 4x ratio at k=4.
    assert bad[-1] >= 4 * bad[0] * 0.8
    # Ratio tracks ~k/2 on this instance.
    for k, r in zip(ks, bad):
        assert r >= k / 4
    # Theorem 1 coreset unaffected.
    assert max(good) <= 2.0
