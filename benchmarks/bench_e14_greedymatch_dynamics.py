"""E14 — Claim 3.3 and Lemma 3.2: GreedyMatch's per-step behaviour.

The optimal matching spreads uniformly over the machines
(|M*_{<i}| ≈ (i−1)/k·MM) and the early steps each gain Ω(MM/k)."""

from _common import emit, run_once
from repro.experiments.registry import get_experiment


def test_e14_dynamics(benchmark):
    table = run_once(
        benchmark,
        lambda: get_experiment("e14").run(n=8000, k=16, n_trials=3),
    )
    emit(table, "e14_greedymatch")
    row = table.rows[0]
    # Claim 3.3: prefix deviation from the (i/k)·MM line is small.
    assert row["prefix_deviation_max"] <= 0.05
    # Lemma 3.2: average early-step gain is Ω(MM/k) — in fact ≥ MM/k.
    assert row["first_third_gain_over_mm_per_k"] >= 1.0
    # Theorem 1 consequence: final matching is a constant fraction of MM.
    assert row["final_over_mm"] >= 1 / 9
