"""E4 — §1.2: min-VC-of-the-piece as a coreset is Ω(k)-approximate (the
star example), while the Theorem 2 peeling coreset stays O(log n)."""

from _common import emit, run_once
from repro.experiments.registry import get_experiment


def test_e4_separation(benchmark):
    table = run_once(
        benchmark,
        lambda: get_experiment("e4").run(
            k_values=(4, 8, 16, 32), n_stars=64, n_trials=3
        ),
    )
    emit(table, "e4_minvc_bad")
    bad = table.column("minvc_ratio")
    good = table.column("peeling_ratio")
    ks = table.column("k")
    assert all(table.column("both_feasible"))
    # Ω(k) growth of the bad coreset...
    assert bad[-1] >= 3 * bad[0] * 0.9
    for k, r in zip(ks, bad):
        assert r >= k / 8
    # ...while peeling stays constant.
    assert max(good) <= 3.0
