"""E20 — the "w.h.p." quantifier itself: tail probabilities of the
Theorem 1 guarantee and the Claim 3.3 prefix deviation vanish as n grows."""

from _common import emit, run_once
from repro.experiments.registry import get_experiment


def test_e20_concentration(benchmark):
    table = run_once(
        benchmark,
        lambda: get_experiment("e20").run(
            n_values=(500, 2000, 8000), k=8, n_trials=20
        ),
    )
    emit(table, "e20_concentration")
    # No tail events at the (generous) 1.5 threshold at any n.
    assert all(row["tail_probability"] == 0.0 for row in table.rows)
    # Spread of the ratio shrinks with n (allow one inversion for noise).
    stds = table.column("ratio_std")
    assert stds[-1] < stds[0]
    # Prefix deviation (Claim 3.3) shrinks with n.
    devs = table.column("prefix_dev_max")
    assert devs[-1] < devs[0]
