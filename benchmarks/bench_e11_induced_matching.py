"""E11 — Appendix A: induced matchings in G(n, n, 1/n).

Measured density converges to the exact constant 1/e² ≈ 0.1353, safely above
Lemma A.3's lower bound 1/e³ ≈ 0.0498; the degree-1 fraction converges to
1/e (Prop A.2a).
"""

from _common import emit, run_once
from repro.experiments.registry import get_experiment


def test_e11_constants(benchmark):
    table = run_once(
        benchmark,
        lambda: get_experiment("e11").run(
            n_values=(1000, 4000, 16000, 64000), n_trials=5
        ),
    )
    emit(table, "e11_induced")
    last = table.rows[-1]  # largest n: tightest convergence
    assert abs(last["induced_density_mean"] - last["exact_theory"]) < 0.01
    assert last["induced_density_mean"] > last["lemma_a3_bound"]
    assert abs(last["deg1_fraction_mean"] - last["theory_deg1"]) < 0.01
