"""E9 — Remark 5.2: subsampled matching coresets give an α-approximation
with Õ(nk/α²) total communication (tight by Theorem 5)."""

from _common import emit, run_once
from repro.experiments.registry import get_experiment


def test_e9_alpha_sweep(benchmark):
    table = run_once(
        benchmark,
        lambda: get_experiment("e9").run(
            n=8000, k=8, alpha_values=(2.0, 4.0, 8.0, 16.0), n_trials=3
        ),
    )
    emit(table, "e9_subsampled")
    assert all(table.column("within_3alpha"))
    # On the Theorem 5-tight distribution, bits·alpha²/(nk) is ~constant:
    # check the normalized column varies by at most 4x across the sweep
    # (log factors + the E_AB noise matching keep it from being exactly
    # flat at laptop scale).
    norm = table.column("bits_x_alpha2_over_nk")
    assert max(norm) <= 4 * min(norm)
    # And raw bits strictly decrease superlinearly in alpha.
    bits = table.column("total_bits_mean")
    alphas = table.column("alpha")
    for i in range(len(bits) - 1):
        assert bits[i + 1] <= bits[i] / (alphas[i + 1] / alphas[i]) * 1.05
