"""E7 — the headline contrast: the same coreset succeeds under random
partitioning and fails (ratio ≈ (k+1)/2) under adversarial partitioning."""

from _common import emit, run_once
from repro.experiments.registry import get_experiment


def test_e7_contrast(benchmark):
    table = run_once(
        benchmark,
        lambda: get_experiment("e7").run(
            k_values=(4, 8, 16), n_hidden_per_k=48, n_trials=3
        ),
    )
    emit(table, "e7_random_vs_adversarial")
    for row in table.rows:
        assert row["random_ratio"] <= 1.5
        # Adversarial ratio lands on the predicted (k+1)/2 within 25%.
        predicted = row["predicted_adversarial"]
        assert abs(row["adversarial_ratio"] - predicted) <= 0.25 * predicted
    # Growth in k.
    adv = table.column("adversarial_ratio")
    assert adv[-1] > adv[0] * 2
