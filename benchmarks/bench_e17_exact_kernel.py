"""E17 — footnote 3: exact kernel coresets for small optima.

When MM(G) ≤ K, composable kernels give the *exact* answer under any
partitioning with Õ(K²)-scale messages — the regime the paper's main
assumption (MM = ω(k log n)) excludes."""

from _common import emit, run_once
from repro.experiments.registry import get_experiment


def test_e17_exact_kernel(benchmark):
    table = run_once(
        benchmark,
        lambda: get_experiment("e17").run(
            opt_values=(32, 128, 512), n=8000, k=8, n_trials=3
        ),
    )
    emit(table, "e17_exact_kernel")
    for row in table.rows:
        assert row["exact_random"]
        assert row["exact_adversarial"]
        # O(K²) size envelope: ≤ 2K(3K+2) per machine (and never more than
        # the graph itself).
        k = 8
        cap = 2 * row["opt_bound"] * (3 * row["opt_bound"] + 2)
        assert row["kernel_edges_total"] <= min(
            k * cap, row["graph_edges"] * 1.01
        )
    # The small-optimum kernels genuinely compress the dense instance.
    first = table.rows[0]
    assert first["kernel_edges_total"] < 0.5 * first["graph_edges"]
