"""E1 — Theorem 1: the maximum-matching coreset is O(1)-approximate.

Regenerates the approximation-ratio table across n and k on bipartite
planted-matching workloads and general Gnp graphs.  Paper claim: ratio ≤ 9
(analysis constant); expected measurement: ≤ ~3, flat in n and k.
"""

from _common import emit, run_once
from repro.experiments.registry import get_experiment


def test_e1_bipartite(benchmark):
    table = run_once(
        benchmark,
        lambda: get_experiment("e1").run(
            n_values=(2000, 8000), k_values=(4, 16, 64), n_trials=3
        ),
    )
    emit(table, "e1_bipartite")
    assert all(r <= 9 for r in table.column("ratio_max"))
    assert all(r <= 3.5 for r in table.column("ratio_mean"))


def test_e1_general_graphs(benchmark):
    table = run_once(
        benchmark,
        lambda: get_experiment("e1").run(
            n_values=(2000,), k_values=(4, 16), n_trials=3,
            general_graphs=True,
        ),
    )
    emit(table, "e1_general")
    assert all(r <= 9 for r in table.column("ratio_max"))
