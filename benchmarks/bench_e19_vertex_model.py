"""E19 — §1.3 / [10]: the edge-partition vs vertex-partition models.

Same summarizer, two models: quality comparable on benign inputs, but the
vertex model duplicates cross edges (factor → 2−1/k) and hands every
machine a Θ(1) fraction of the graph — the regime where [10] proves Õ(n)
summaries cannot work in the worst case."""

from _common import emit, run_once
from repro.experiments.registry import get_experiment


def test_e19_models(benchmark):
    table = run_once(
        benchmark,
        lambda: get_experiment("e19").run(
            n=4000, k_values=(4, 16), n_trials=3
        ),
    )
    emit(table, "e19_vertex_model")
    for row in table.rows:
        k = row["k"]
        assert row["edge_model_ratio"] <= 3
        assert row["vertex_model_ratio"] <= 3
        # Input duplication factor approaches 2 - 1/k in the vertex model.
        assert abs(row["duplication_factor"] - (2 - 1 / k)) < 0.1
        # Communication is the same order in both models on benign inputs
        # (the [10] hardness needs worst-case instances); messages are
        # matchings, so duplication of *input* edges need not inflate them.
        assert row["vertex_model_bits"] <= 3 * row["edge_model_bits"]
        assert row["vertex_model_bits"] >= row["edge_model_bits"] / 3
