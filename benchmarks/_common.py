"""Shared helpers for the benchmark suite.

Every benchmark regenerates one experiment table (DESIGN.md §4), prints it,
and archives it under ``benchmarks/results/`` so EXPERIMENTS.md can be
refreshed mechanically.  The pytest-benchmark fixture times the full table
generation (one round — these are experiment harnesses, not microbenchmarks,
and their interesting output is the table itself).

Benchmarks honor ``REPRO_EXECUTOR`` / ``REPRO_WORKERS``: the distributed
engines resolve their default backend from the environment, so
``REPRO_EXECUTOR=processes pytest benchmarks/`` re-times every table with
process-parallel machines (outputs stay bit-identical per seed — see
``docs/PARALLELISM.md``).  A non-serial backend is echoed next to each
table so timings are never misread as serial numbers.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.harness import ExperimentTable

RESULTS_DIR = Path(__file__).parent / "results"


def executor_backend() -> str:
    """The backend name benchmarks are running under (default ``serial``)."""
    from repro.dist.executor import resolve_executor

    return resolve_executor(None).name


def emit(table: ExperimentTable, stem: str) -> ExperimentTable:
    """Print the table and archive it under benchmarks/results/<stem>.txt."""
    text = table.format()
    backend = executor_backend()
    if backend != "serial":
        # The annotation must reach the archive, not just the console —
        # results files are what reports are regenerated from, and a
        # process-pool timing must never be misread as a serial one.
        text += f"\n[executor backend: {backend}]"
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{stem}.txt").write_text(text + "\n")
    return table


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the pytest-benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
