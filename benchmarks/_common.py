"""Shared helpers for the benchmark suite.

Every benchmark regenerates one experiment table (DESIGN.md §4), prints it,
and archives it under ``benchmarks/results/`` so EXPERIMENTS.md can be
refreshed mechanically.  The pytest-benchmark fixture times the full table
generation (one round — these are experiment harnesses, not microbenchmarks,
and their interesting output is the table itself).
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.harness import ExperimentTable

RESULTS_DIR = Path(__file__).parent / "results"


def emit(table: ExperimentTable, stem: str) -> ExperimentTable:
    """Print the table and archive it under benchmarks/results/<stem>.txt."""
    text = table.format()
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{stem}.txt").write_text(text + "\n")
    return table


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the pytest-benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
