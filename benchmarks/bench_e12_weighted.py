"""E12 — §1.1: the Crouch–Stubbs weighted matching extension.

The weighted coreset protocol's matching weight stays within a small
constant of the centralized greedy 2-approximation (hence within ~2x that
constant of the true optimum)."""

from _common import emit, run_once
from repro.experiments.registry import get_experiment


def test_e12_weighted_matching(benchmark):
    table = run_once(
        benchmark,
        lambda: get_experiment("e12").run(
            n=4000, k=8, weight_spread=1000.0, n_trials=3
        ),
    )
    emit(table, "e12_weighted")
    for row in table.rows:
        # Protocol weight within 2.5x of central greedy — far inside the
        # theoretical 2·O(1) envelope.
        assert row["weight_ratio"] <= 2.5
