"""E8 — the MapReduce corollary: 2 rounds (1 pre-randomized) for the coreset
algorithm vs ≥ 3 rounds for the Lattanzi et al. filtering baseline, at the
paper's memory regime."""

from _common import emit, run_once
from repro.experiments.registry import get_experiment


def test_e8_rounds_and_memory(benchmark):
    table = run_once(
        benchmark,
        lambda: get_experiment("e8").run(n=4000, avg_degree=24.0,
                                           n_trials=3),
    )
    emit(table, "e8_mapreduce")
    rows = {r["algorithm"]: r for r in table.rows}
    assert rows["coreset-2round"]["rounds_mean"] == 2
    assert rows["coreset-prerandomized"]["rounds_mean"] == 1
    assert rows["filtering[46]"]["rounds_mean"] >= 3
    # Approximations: coreset O(1), filtering ≤ 2.
    assert rows["coreset-2round"]["ratio_mean"] <= 3
    assert rows["filtering[46]"]["ratio_mean"] <= 2.05
    # Memory: the central machine stays within the model cap.
    for r in table.rows:
        assert r["peak_machine_edges"] <= r["memory_cap"]
