#!/usr/bin/env python
"""Quickstart: the paper's pipeline in ~30 lines.

1. Generate a bipartite graph with a planted perfect matching.
2. Randomly partition its edges across k simulated machines.
3. Each machine sends its coreset — *any maximum matching of its piece*
   (Theorem 1) — to the coordinator.
4. The coordinator runs a maximum-matching algorithm on the union of the
   coresets.

Run:  python examples/quickstart.py
"""

from repro.core.protocols import matching_coreset_protocol
from repro.dist.coordinator import run_simultaneous
from repro.graph.generators import planted_matching_gnp
from repro.graph.partition import random_k_partition
from repro.matching.api import matching_number
from repro.utils.rng import spawn_generators


def main() -> None:
    n, k = 4000, 8
    gens = spawn_generators(seed=0, n=3)

    # A bipartite workload with MM(G) = n/2 guaranteed by a planted matching.
    graph, _ = planted_matching_gnp(n // 2, n // 2, p=3.0 / n, rng=gens[0])
    print(f"graph: n={graph.n_vertices}, m={graph.n_edges}")

    # The paper's random k-partitioning: each edge to a uniform machine.
    partitioned = random_k_partition(graph, k, gens[1])
    print(f"partitioned across k={k} machines, "
          f"piece sizes={partitioned.piece_sizes().tolist()}")

    # Run the simultaneous protocol (one message per machine, no interaction).
    result = run_simultaneous(matching_coreset_protocol(), partitioned, gens[2])

    optimum = matching_number(graph)
    output = result.output.shape[0]
    print(f"maximum matching (centralized): {optimum}")
    print(f"composed coreset matching:      {output}")
    print(f"approximation ratio:            {optimum / output:.3f} "
          f"(Theorem 1 guarantees <= 9)")
    print(f"total communication:            {result.total_bits} bits "
          f"({result.ledger.max_player_bits()} max per machine; "
          f"sending the whole graph would cost "
          f"{graph.n_edges * 2 * 13} bits)")


if __name__ == "__main__":
    main()
