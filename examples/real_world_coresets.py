#!/usr/bin/env python
"""Randomized composable coresets on real-world workloads.

The paper's Theorem 1 guarantee conditions on a *random* k-partition of
the edges.  This example measures what that premise buys on graphs
nature actually produces (docs/WORKLOADS.md):

1. list the workload registry and build the gMission dataset workload
   offline from its bundled fixture,
2. run the matching coreset under a random partition vs the two
   adversarial placements (degree-sorted, community) and compare the
   approximation ratios,
3. do the same for the capacitated story: b-matching coresets on the
   `ba_adwords` AdWords family, with every composed solution verified
   feasible under the per-advertiser budgets.

Everything is offline and deterministic: the dataset loaders fall back
to fixtures shipped inside the package, so a fresh checkout runs this
with zero setup and reproduces the same numbers per seed.

Run:  python examples/real_world_coresets.py
"""

import os

import numpy as np

# Pin the bundled fixtures so the numbers match on any machine,
# networked or not.
os.environ.setdefault("REPRO_OFFLINE", "1")

from repro.graph.bipartite import BipartiteGraph
from repro.matching.api import matching_number, maximum_matching
from repro.solve import RunContext, solve
from repro.workloads import all_workloads, build_workload, partition_workload

K = 4
SEED = 7


def show_registry():
    print("registered workloads:")
    for spec in all_workloads():
        flags = ",".join(
            f for f, on in (("weighted", spec.weighted),
                            ("capacitated", spec.capacitated)) if on
        ) or "-"
        print(f"  {spec.name:<12} {spec.kind:<10} [{flags}]")
    print()


def partition_quality(name: str):
    """The E22 measurement on one workload, spelled out by hand."""
    g = build_workload(name, rng=SEED)
    opt = matching_number(g)
    print(f"{name}: {g.n_left}x{g.n_right}, {g.n_edges} edges, "
          f"MM(G) = {opt}")
    rng = np.random.default_rng(SEED)
    for strategy in ("random", "degree_sorted", "community"):
        part = partition_workload(g, K, strategy, rng=rng)
        # Each machine sends a maximum matching of its piece (Theorem 1's
        # coreset); the coordinator solves the union.
        union = np.concatenate(
            [maximum_matching(part.piece(i)) for i in range(K)]
        )
        coreset = BipartiteGraph(g.n_left, g.n_right, union)
        got = matching_number(coreset)
        print(f"  {strategy:<14} coreset {coreset.n_edges:>6} edges  "
              f"matching {got:>4}  ratio {opt / got:.3f}")
    print()


def capacitated_story():
    """b-matching coresets on the AdWords family, via the solver facade."""
    g = build_workload("ba_adwords", rng=SEED)
    opt = solve(g, "matching.b_exact")
    print(f"ba_adwords: {g.n_left} advertisers x {g.n_right} impressions, "
          f"budgets sum {int(g.capacities.sum())}, "
          f"exact b-matching {opt.value}")
    for strategy in ("random", "degree_sorted", "community"):
        res = solve(g, "matching.b_coreset", RunContext(seed=SEED, k=K),
                    strategy=strategy)
        assert res.verified, "composed b-matching must respect budgets"
        print(f"  {strategy:<14} value {res.value:>4}  "
              f"ratio {opt.value / res.value:.3f}  "
              f"(feasible: {res.verified})")
    print()


def main():
    show_registry()
    for name in ("gmission", "movielens"):
        partition_quality(name)
    capacitated_story()
    print("the paper's premise, measured: random partitions keep the "
          "coreset O(1)-approximate;")
    print("adversarial placement of hubs/communities degrades it — on "
          "real data too.")


if __name__ == "__main__":
    main()
