#!/usr/bin/env python
"""Remote execution: the matching coreset on socket-joined workers.

Scenario: the k machines of the simultaneous protocol run as *separate
worker processes joined over TCP* — the same fleet shape you would use
across hosts, demonstrated here with two local `repro worker`
subprocesses.  The coordinator binds a port, the workers dial in, tasks
stream out as length-prefixed pickle frames, and results come back
composed in machine-index order — so the run is bit-identical to serial
per seed, exactly like every other backend (docs/PARALLELISM.md §7).

The script shows the full external-fleet workflow:

1. `RemoteExecutor(spawn_workers=0)` + `start()` — bind now, spawn nobody;
2. launch two `repro worker --connect HOST:PORT` subprocesses;
3. run the matching-coreset protocol over the fleet, twice, on one
   persistent executor — the second barrier reuses both connections and
   the piece cache ships each graph piece at most once per worker;
4. verify bit-identity against a serial run and print the cache counters;
5. close — workers receive a shutdown frame and exit 0.

Run:  python examples/remote_matching.py
"""

import subprocess
import sys
import time

import numpy as np

from repro.core.protocols import matching_coreset_protocol
from repro.dist.coordinator import run_simultaneous
from repro.dist.remote import RemoteExecutor
from repro.graph.generators import planted_matching_gnp
from repro.graph.partition import random_k_partition

N_WORKERS = 2


def main() -> None:
    graph, _ = planted_matching_gnp(2000, 2000, p=12.0 / 4000, rng=0)
    part = random_k_partition(graph, k=6, rng=1)
    proto = matching_coreset_protocol()
    print(f"workload: n={graph.n_vertices}, m={graph.n_edges}, k=6")

    serial_a = run_simultaneous(proto, part, rng=5)
    serial_b = run_simultaneous(proto, part, rng=6)

    ex = RemoteExecutor(max_workers=N_WORKERS, spawn_workers=0,
                        cache_min_bytes=1024)
    workers = []
    try:
        host, port = ex.start()
        print(f"coordinator listening on {host}:{port}")
        for i in range(N_WORKERS):
            workers.append(subprocess.Popen(
                [sys.executable, "-m", "repro", "worker",
                 "--connect", f"{host}:{port}", "--tag", f"demo-{i}"]))
        print(f"launched {N_WORKERS} `repro worker` subprocesses\n")

        for seed, serial in ((5, serial_a), (6, serial_b)):
            start = time.perf_counter()
            remote = run_simultaneous(proto, part, rng=seed, executor=ex)
            wall = time.perf_counter() - start
            identical = (np.array_equal(remote.output, serial.output)
                         and remote.total_bits == serial.total_bits)
            print(f"  seed {seed}: {wall:5.2f}s  "
                  f"matching={remote.output.shape[0]}  "
                  f"bits={remote.total_bits}  "
                  f"identical_to_serial={identical}")
            assert identical, "determinism contract violated"

        stats = ex.piece_cache.stats()
        print(f"\npiece cache: {stats['pieces_stored']} pieces stored once, "
              f"{stats['fetches_served']} fetches served "
              f"(bound: pieces x workers = "
              f"{stats['pieces_stored'] * N_WORKERS}), "
              f"{stats['bytes_shipped']} bytes shipped "
              f"for 2 barriers over the same partition")
        assert stats["fetches_served"] <= stats["pieces_stored"] * N_WORKERS
    finally:
        ex.close()
    for proc in workers:
        rc = proc.wait(timeout=30)
        assert rc == 0, f"worker exited with {rc}"
    print("workers shut down cleanly (exit 0)\n")
    print("Same seed, same bits — across processes joined over sockets.")


if __name__ == "__main__":
    main()
