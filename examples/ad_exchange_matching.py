#!/usr/bin/env python
"""Distributed ad-exchange allocation with weighted coresets.

Scenario: an ad exchange must match advertisers to impression slots.  Bid
logs (edges: advertiser × slot, weight = bid value) arrive sharded across k
ingestion servers.  We want a high-value allocation (a maximum-weight
matching) with one round of communication.

This drives the Crouch–Stubbs weighted extension (paper §1.1): every server
buckets its bids into geometric value classes, computes a maximum matching
*inside each class* (the Theorem 1 coreset per class), and ships the union;
the coordinator greedily merges from the highest value class down.

Run:  python examples/ad_exchange_matching.py
"""

import numpy as np

from repro.core.weighted import weighted_matching_coreset_protocol
from repro.graph.generators import bipartite_gnp
from repro.graph.weights import WeightedGraph
from repro.matching.weighted import greedy_weighted_matching
from repro.utils.rng import spawn_generators


def make_bid_log(n_advertisers, n_slots, rng):
    """Bipartite bid graph with log-normal bid values (heavy-tailed, like
    real auctions).  Dense: every advertiser bids on many slots, which is
    the regime where shipping coresets instead of raw bid logs pays off.
    """
    base = bipartite_gnp(n_advertisers, n_slots, p=80.0 / n_slots, rng=rng)
    bids = np.exp(rng.normal(loc=0.0, scale=1.2, size=base.n_edges)) + 0.01
    return WeightedGraph(base.n_vertices, base.edges, bids, validated=True)


def main() -> None:
    gens = spawn_generators(seed=42, n=2)
    n_adv = n_slots = 1000
    k = 8
    wg = make_bid_log(n_adv, n_slots, gens[0])
    print(f"bid log: {wg.n_edges} bids, {n_adv} advertisers, "
          f"{n_slots} slots, total value {wg.total_weight():.0f}")

    for epsilon in (0.5, 1.0):
        res = weighted_matching_coreset_protocol(
            wg, k=k, epsilon=epsilon, rng=gens[1]
        )
        _, central = greedy_weighted_matching(wg)
        print(f"\nepsilon={epsilon} (class width {1 + epsilon:g}x):")
        print(f"  allocation value (distributed): {res.weight:.0f}")
        print(f"  centralized greedy (>= OPT/2):  {central:.0f}")
        print(f"  value retained:                 {res.weight / central:.1%}")
        print(f"  communication:                  "
              f"{res.ledger.total_bits()} bits "
              f"(vs {wg.n_edges * 24} to ship every bid)")


if __name__ == "__main__":
    main()
