#!/usr/bin/env python
"""Distributed ad-exchange allocation, served over HTTP.

Scenario: an ad exchange must match advertisers to impression slots.  Bid
logs (edges: advertiser × slot, weight = bid value) arrive sharded across
k ingestion servers.  We want a high-value allocation (a maximum-weight
matching) with one round of communication — and we want it *as a
service*: the bid log is pinned once, then allocation queries hit a warm
``repro serve`` instance instead of re-running scripts.

The solver behind ``/solve`` is the Crouch–Stubbs weighted extension
(paper §1.1): every server buckets its bids into geometric value classes,
computes a maximum matching *inside each class* (the Theorem 1 coreset
per class), and ships the union; the coordinator greedily merges from the
highest value class down.

This example boots a :class:`repro.serve.ReproServer` in-process (no
subprocess, no port juggling — the same server ``repro serve`` runs),
registers the bid log from an ``.npz`` file exactly as an operator would
(``POST /graphs``), then:

* runs a ``/compare`` of the weighted coreset at two class widths (the
  communication baseline — shipping every raw bid — is arithmetic), and
* fires a burst of concurrent ``/solve`` queries to show micro-batching
  (one executor barrier for the burst) and per-seed determinism.

Run:  python examples/ad_exchange_matching.py
"""

import asyncio
import tempfile
from pathlib import Path

import numpy as np

from repro.graph.generators import bipartite_gnp
from repro.graph.io import save_npz
from repro.graph.weights import WeightedGraph
from repro.serve import ReproServer, ServeClient, ServeConfig
from repro.utils.rng import spawn_generators


def make_bid_log(n_advertisers, n_slots, rng):
    """Bipartite bid graph with log-normal bid values (heavy-tailed, like
    real auctions).  Dense: every advertiser bids on many slots, which is
    the regime where shipping coresets instead of raw bid logs pays off.
    """
    base = bipartite_gnp(n_advertisers, n_slots, p=80.0 / n_slots, rng=rng)
    bids = np.exp(rng.normal(loc=0.0, scale=1.2, size=base.n_edges)) + 0.01
    return WeightedGraph(base.n_vertices, base.edges, bids, validated=True)


async def main() -> None:
    rng = spawn_generators(seed=42, n=1)[0]
    n_adv = n_slots = 1000
    k = 8
    wg = make_bid_log(n_adv, n_slots, rng)
    print(f"bid log: {wg.n_edges} bids, {n_adv} advertisers, "
          f"{n_slots} slots, total value {wg.total_weight():.0f}")

    with tempfile.TemporaryDirectory() as tmp:
        # Operators hand the server a file path, not a live object: the
        # ingest pipeline drops bid logs as .npz, the server pins them.
        bid_log_path = Path(tmp) / "bid_log.npz"
        save_npz(bid_log_path, wg)

        async with ReproServer(ServeConfig(batch_window_ms=20.0)) as server:
            client = ServeClient(port=server.port)
            info = await client.register_graph("bids", str(bid_log_path))
            print(f"pinned via POST /graphs: kind={info['kind']} "
                  f"n={info['n_vertices']} m={info['n_edges']}")

            # -- side-by-side: class width vs. allocation value ---------- #
            doc = await client.compare("bids", [
                {"solver": "matching.weighted_coreset",
                 "params": {"epsilon": 0.5}, "label": "classes 1.5x wide"},
                {"solver": "matching.weighted_coreset",
                 "params": {"epsilon": 1.0}, "label": "classes 2x wide"},
            ], seed=7, k=k)
            ship_bits = wg.n_edges * 24  # 2×int32 endpoints + fp bid each
            for col in doc["solvers"]:
                bits = col["result"]["stats"].get("total_bits")
                print(f"  {col['label']:<20} value {col['result']['value']:>8.0f}"
                      f"  comm {bits:>12,} bits"
                      f"  verified={col['result']['verified']}")
            best = doc["summary"]["best_value"]
            print(f"  best allocation value: {best:.0f} "
                  f"(all {doc['summary']['completed']} columns in one batch)")

            # -- a burst of concurrent queries: micro-batching ---------- #
            seeds = list(range(8))
            docs = await asyncio.gather(*(
                client.solve("bids", solver="matching.weighted_coreset",
                             seed=s, k=k, params={"epsilon": 0.5})
                for s in seeds
            ))
            again = await client.solve("bids",
                                       solver="matching.weighted_coreset",
                                       seed=seeds[0], k=k,
                                       params={"epsilon": 0.5})
            values = [d["result"]["value"] for d in docs]
            batched = max(d["batch_size"] for d in docs)
            print(f"\nburst of {len(seeds)} concurrent queries "
                  f"(max batch {batched}):")
            print(f"  allocation values by seed: "
                  f"{', '.join(f'{v:.0f}' for v in values)}")
            strip = lambda d: {x: v for x, v in d.items()
                               if x != "wall_time_s"}
            print(f"  seed {seeds[0]} replayed: "
                  f"{again['result']['value']:.0f} "
                  f"(bit-identical: "
                  f"{strip(again['result']) == strip(docs[0]['result'])})")

            stats = await client.stats()
            b = stats["batcher"]
            print(f"\nserver stats: {b['requests']} solves in "
                  f"{b['batches']} batches "
                  f"(largest {b['max_batch_seen']}); "
                  f"coreset comm at eps=0.5 was "
                  f"{docs[0]['result']['stats']['total_bits']:,} bits vs "
                  f"{ship_bits:,} to ship every bid")


if __name__ == "__main__":
    asyncio.run(main())
