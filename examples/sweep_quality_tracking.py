#!/usr/bin/env python
"""Quality tracking over a sweep grid: E12's ε×k weighted-matching ratio.

The sweep runner (``repro.sweep``) turns one experiment into a grid of
content-addressed cells; the trend engine turns accumulated artifacts
into per-metric series across commits with a regression gate.  This
example does both end to end:

1. sweep E12 (Crouch–Stubbs weighted matching) over ε × k at toy scale,
2. print the ε×k ``weight_ratio`` grid straight from the manifest and the
   per-cell artifacts,
3. simulate a *second artifact generation* — same grid, a later commit,
   a degraded ratio — and render the trend report that flags it.

Everything lands in a temp directory; rerun the script and step 1 reports
every cell as cached (the resume semantics `repro sweep` gives for free).

Run:  python examples/sweep_quality_tracking.py
"""

import json
import tempfile
from pathlib import Path

from repro.sweep import (
    TrendThresholds,
    build_series,
    cell_artifact_path,
    collect_trend_docs,
    evaluate_trends,
    plan_grid,
    render_trend,
    run_sweep,
)

# Axis points: each --set value is its own cell, so this is a 2×2 grid.
EPSILONS = (0.25, 0.5)
KS = (2, 4)


def sweep_quality_grid(directory: Path):
    """Steps 1–2: run the ε×k sweep and print the quality surface."""
    cells = plan_grid(
        ["e12"],
        [
            f"epsilon_values={','.join(str(e) for e in EPSILONS)}",
            f"k={','.join(str(k) for k in KS)}",
            "n=400",            # toy scale: the shape, not the paper's table
            "n_trials=1",
        ],
    )
    print(f"planned {len(cells)} cells:")
    for cell in cells:
        print(f"  {cell.describe()}")

    result = run_sweep(cells, directory)
    print(f"\nsweep: {result.summary()}")
    print(f"manifest: {result.manifest_path}\n")

    # The quality surface, read back from the content-addressed artifacts.
    ratios = {}
    for cell in cells:
        doc = json.loads(cell_artifact_path(directory, cell).read_text())
        overrides = dict(cell.overrides)
        (row,) = doc["table"]["rows"]
        ratios[(overrides["epsilon_values"][0], overrides["k"])] = \
            row["weight_ratio"]

    print("weight_ratio (central greedy / protocol; lower is better):")
    print(f"{'':>10s}" + "".join(f"k={k:<8d}" for k in KS))
    for eps in EPSILONS:
        cells_text = "".join(f"{ratios[(eps, k)]:<10.4f}" for k in KS)
        print(f"  eps={eps:<5g}{cells_text}")


def simulate_regression(directory: Path):
    """Step 3: a later 'commit' with a worse ratio, caught by the gate."""
    trend_dir = directory / "trend"
    gen_a = trend_dir / "commit-aaa"
    gen_b = trend_dir / "commit-bbb"
    gen_a.mkdir(parents=True)
    gen_b.mkdir(parents=True)

    for cell_path in sorted((directory / "cells").glob("*.json")):
        doc = json.loads(cell_path.read_text())
        doc["git_commit"] = "a" * 40
        (gen_a / cell_path.name).write_text(json.dumps(doc))
        # The simulated follow-up commit: every ratio 12% worse (the
        # default quality tolerance is 5%), timestamps strictly later.
        worse = json.loads(cell_path.read_text())
        worse["git_commit"] = "b" * 40
        worse["created_at"] = "2099-01-01T00:00:00+00:00"
        for row in worse["table"]["rows"]:
            row["weight_ratio"] *= 1.12
        (gen_b / cell_path.name).write_text(json.dumps(worse))

    thresholds = TrendThresholds()
    series = build_series(collect_trend_docs(trend_dir))
    flags = evaluate_trends(series, thresholds)
    print("\n--- simulated second generation (ratio +12%) ---\n")
    print(render_trend(series, flags, thresholds))
    assert any(f.kind == "quality" for f in flags), \
        "the injected quality regression must be flagged"
    print("\nCI shape: `repro report --trend DIR --check` exits "
          f"{1 if flags else 0} here.")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-sweep-") as tmp:
        directory = Path(tmp) / "e12-quality"
        sweep_quality_grid(directory)
        simulate_regression(directory)


if __name__ == "__main__":
    main()
