#!/usr/bin/env python
"""The paper's headline insight, live: the *same* coreset on the *same*
graph succeeds under random partitioning and collapses under adversarial
partitioning.

The instance is the decoy-gadget graph (see repro.lowerbounds.adversary):
a perfect hidden matching plus per-edge decoy gadgets drawn from a small
shared vertex pool.  The adversary co-locates each hidden edge with its
gadget, making every machine's unique maximum matching avoid the hidden
edge; random placement breaks the gadgets apart and the hidden matching
sails through.

Run:  python examples/random_vs_adversarial.py
"""

from repro.lowerbounds.adversary import contrast_partitionings
from repro.utils.rng import spawn_generators


def main() -> None:
    print(f"{'k':>4} {'optimum':>8} {'random ratio':>13} "
          f"{'adversarial ratio':>18} {'predicted (k+1)/2':>18}")
    gens = spawn_generators(seed=3, n=8)
    for i, k in enumerate((4, 8, 16, 32)):
        c = contrast_partitionings(n_hidden=48 * k, k=k, rng=gens[i])
        print(f"{k:>4} {c.optimum:>8} {c.random_ratio:>13.2f} "
              f"{c.adversarial_ratio:>18.2f} {(k + 1) / 2:>18.1f}")
    print(
        "\nReading: random partitioning keeps the coreset O(1)-approximate\n"
        "at every k; adversarial placement degrades it linearly in k —\n"
        "the separation Results 1 vs. the [10] lower bound describe."
    )


if __name__ == "__main__":
    main()
