#!/usr/bin/env python
"""The unified solver facade: every algorithm behind one API.

The paper treats algorithms as black boxes; ``repro.solve`` makes that
literal.  This example runs the *same seeded workload* through one solver
per execution model — offline, coreset, MapReduce, streaming — plus two
vertex-cover solvers, comparing values, communication, and wall clock
from the uniform ``SolveResult``, without importing a single algorithm
module.

Run:  python examples/solver_facade.py
"""

from repro.solve import RunContext, get_solver, load_graph, solve
from repro.utils.rng import spawn_seeds


def main() -> None:
    graph_seed, solve_seed = spawn_seeds(0, 2)
    graph = load_graph("planted:n=4000", rng=graph_seed)
    print(f"graph: n={graph.n_vertices}, m={graph.n_edges}\n")

    # The same context drives every solver: one seed, k machines for the
    # distributed models (offline/streaming solvers ignore k).
    ctx = RunContext(seed=solve_seed, k=8)

    print(f"{'solver':32s} {'model':10s} {'value':>7s} {'verified':>8s} "
          f"{'wall':>8s}  extra")
    for name in (
        "matching.maximum",            # offline optimum (the denominator)
        "matching.coreset",            # Theorem 1, simultaneous model
        "matching.mapreduce",          # §1.1, ≤ 2 rounds
        "matching.streaming_greedy",   # one-pass semi-streaming
        "vertex_cover.konig",          # exact bipartite VC
        "vertex_cover.coreset",        # Theorem 2
    ):
        res = solve(graph, name, ctx)
        spec = get_solver(name)
        extra = ""
        if "total_bits" in res.stats:
            extra = f"{res.stats['total_bits']} bits"
        elif "n_rounds" in res.stats:
            extra = f"{res.stats['n_rounds']} rounds"
        elif "memory_words" in res.stats:
            extra = f"{res.stats['memory_words']} words"
        print(f"{name:32s} {spec.model:10s} {res.value:7g} "
              f"{str(res.verified):>8s} {res.wall_time_s:7.3f}s  {extra}")

    # Re-running with the same context is bit-identical — the contract
    # every backend (serial/threads/processes) upholds.
    again = solve(graph, "matching.coreset", ctx)
    first = solve(graph, "matching.coreset", ctx)
    assert (first.certificate == again.certificate).all()
    print("\nsame RunContext → bit-identical certificate: OK")


if __name__ == "__main__":
    main()
