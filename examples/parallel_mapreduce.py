#!/usr/bin/env python
"""Process-parallel protocol execution: same seed, same bits, less wall-clock.

Scenario: the E8 MapReduce matching workload is CPU-bound — every machine
computes a maximum matching of its piece — and the machines are independent
by construction.  The executor backends (repro.dist.executor) exploit that:
the identical `run_simultaneous` / `mapreduce_matching` call runs the k
machines serially, on a thread pool, or on one process per machine, and the
determinism contract (docs/PARALLELISM.md) guarantees the outputs are
bit-identical per seed across all of them — results are composed in
machine-index order, never completion order.

This script runs the workload once per backend, checks bit-identity against
serial, and reports wall-clock.  Speedups depend on your core count and the
per-machine piece size; `python -m repro experiment e21` prints the same
comparison as an experiment table.

Run:  python examples/parallel_mapreduce.py
"""

import time

import numpy as np

from repro.core.mapreduce_algos import mapreduce_matching
from repro.core.protocols import matching_coreset_protocol
from repro.dist.coordinator import run_simultaneous
from repro.graph.generators import planted_matching_gnp
from repro.graph.partition import random_k_partition
from repro.utils.rng import spawn_generators

BACKENDS = ["serial", "threads", "processes"]


def main() -> None:
    gens = spawn_generators(seed=21, n=2)
    half, k = 3000, 8
    graph, _ = planted_matching_gnp(half, half, p=24.0 / (2 * half),
                                    rng=gens[0])
    part = random_k_partition(graph, k, gens[1])
    print(f"workload: n={graph.n_vertices}, m={graph.n_edges}, k={k}\n")

    # --- the simultaneous protocol engine -------------------------------
    print("run_simultaneous(matching_coreset_protocol):")
    reference = None
    for backend in BACKENDS:
        start = time.perf_counter()
        res = run_simultaneous(matching_coreset_protocol(), part, rng=5,
                               executor=backend)
        wall = time.perf_counter() - start
        if reference is None:
            reference = res
        identical = (np.array_equal(res.output, reference.output)
                     and res.total_bits == reference.total_bits)
        print(f"  {backend:>9}: {wall:6.2f}s  matching={res.output.shape[0]}"
              f"  bits={res.total_bits}  identical_to_serial={identical}")
        assert identical, "determinism contract violated"

    # --- the MapReduce simulator ----------------------------------------
    print("\nmapreduce_matching (2 rounds, coreset to machine 0):")
    reference = None
    for backend in BACKENDS:
        start = time.perf_counter()
        res = mapreduce_matching(graph, k=k, rng=6, executor=backend)
        wall = time.perf_counter() - start
        if reference is None:
            reference = res
        identical = np.array_equal(res.matching, reference.matching)
        print(f"  {backend:>9}: {wall:6.2f}s  matching={res.matching.shape[0]}"
              f"  rounds={res.job.n_rounds}  identical_to_serial={identical}")
        assert identical, "determinism contract violated"

    print("\nSame seed, same bits, on every backend.")


if __name__ == "__main__":
    main()
