#!/usr/bin/env python
"""Random arrival helps a single machine too (the paper's §1.3 remark).

The random k-partitioning that powers the coresets is the multi-machine
analogue of a *randomly ordered* edge stream.  This example processes the
same graph as a one-pass semi-streaming computation under

* an adversarial arrival order (optimal edges last), and
* a random arrival order,

with the plain greedy matcher and the two-phase (KMM-style) matcher that
exploits random arrival by collecting 3-augmentations in its second phase.

Run:  python examples/streaming_arrival.py
"""

from repro.graph.generators import planted_matching_gnp
from repro.matching.api import maximum_matching
from repro.streaming import (
    StreamingGreedyMatcher,
    TwoPhaseStreamingMatcher,
    adversarial_order,
    random_order,
)
from repro.utils.rng import spawn_generators


def main() -> None:
    gens = spawn_generators(seed=11, n=3)
    n = 20000
    graph, _ = planted_matching_gnp(n // 2, n // 2, p=3.0 / n, rng=gens[0])
    opt_matching = maximum_matching(graph)
    opt = opt_matching.shape[0]
    print(f"graph: n={graph.n_vertices}, m={graph.n_edges}, MM={opt}")
    print(f"semi-streaming memory: "
          f"{TwoPhaseStreamingMatcher(graph.n_vertices).memory_words} words "
          f"(3n; the stream itself is {graph.n_edges} edges)\n")

    orders = {
        "adversarial": adversarial_order(graph, opt_matching, gens[1]),
        "random": random_order(graph, gens[2]),
    }
    print(f"{'arrival order':>14} {'greedy':>8} {'two-phase':>10}")
    for name, order in orders.items():
        g_size = StreamingGreedyMatcher(graph.n_vertices).run(
            graph, order
        ).shape[0]
        t_size = TwoPhaseStreamingMatcher(graph.n_vertices).run(
            graph, order
        ).shape[0]
        print(f"{name:>14} {g_size / opt:>8.3f} {t_size / opt:>10.3f}")
    print(
        "\nReading: randomizing the arrival order lifts greedy above its\n"
        "adversarial ratio, and the two-phase matcher converts the random\n"
        "order into 3-augmentations — the same phenomenon the paper\n"
        "harnesses across k machines."
    )


if __name__ == "__main__":
    main()
