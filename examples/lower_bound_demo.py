#!/usr/bin/env python
"""Watching the lower bounds bite (Theorems 3 and 4).

This example samples the paper's hard distributions and sweeps the coreset
size budget, printing the collapse the proofs predict:

* D_Matching: a near-perfect matching hides inside an induced matching that
  is locally indistinguishable from noise; coresets below ~n/α² edges per
  machine cannot recover enough of it to beat an α-approximation.
* D_VC: a single planted edge e* must be covered, but the machine holding
  it cannot tell it apart from its other degree-one edges; below ~n/α
  message size the output cover misses e* almost always.

Run:  python examples/lower_bound_demo.py
"""

from repro.cover.verify import is_vertex_cover
from repro.dist.coordinator import run_simultaneous
from repro.graph.partition import random_k_partition
from repro.lowerbounds.dmatching import (
    budget_limited_matching_protocol,
    hidden_edges_recovered,
    sample_dmatching,
)
from repro.lowerbounds.dvc import (
    budget_limited_cover_protocol,
    covers_estar,
    sample_dvc,
)
from repro.matching.api import matching_number
from repro.utils.rng import spawn_generators


def matching_lower_bound() -> None:
    n, alpha, k = 8000, 8, 8
    threshold = n / alpha**2
    print(f"D_Matching(n={n}, alpha={alpha}, k={k}) — "
          f"Theorem 3 threshold: s = n/alpha^2 = {threshold:.0f} edges")
    gens = spawn_generators(1, 3)
    inst = sample_dmatching(n, alpha, k, gens[0])
    part = random_k_partition(inst.graph, k, gens[1])
    opt = matching_number(inst.graph)
    print(f"  MM(G) = {opt}, hidden matching = {inst.hidden_matching.shape[0]}")
    print(f"  {'budget':>8} {'output':>8} {'hidden recovered':>17} {'ratio':>7}")
    for factor in (0.1, 0.5, 1.0, 4.0, 16.0):
        budget = max(1, int(factor * threshold))
        res = run_simultaneous(
            budget_limited_matching_protocol(budget), part, gens[2]
        )
        out = res.output.shape[0]
        rec = hidden_edges_recovered(inst, res.output)
        marker = "  <-- beats alpha" if opt / out < alpha else ""
        print(f"  {budget:>8} {out:>8} {rec:>17} {opt / out:>7.2f}{marker}")


def vc_lower_bound() -> None:
    n, alpha, k = 8000, 8, 8
    threshold = n / alpha
    print(f"\nD_VC(n={n}, alpha={alpha}, k={k}) — "
          f"Theorem 4 threshold: s = n/alpha = {threshold:.0f}")
    gens = spawn_generators(2, 20)
    print(f"  {'budget':>8} {'P[e* covered]':>14} {'P[feasible]':>12}")
    for factor in (0.05, 0.25, 1.0, 4.0):
        budget = max(1, int(factor * threshold))
        covered = feasible = 0
        trials = 5
        for t in range(trials):
            inst = sample_dvc(n, alpha, k, gens[3 * t])
            part = random_k_partition(inst.graph, k, gens[3 * t + 1])
            res = run_simultaneous(
                budget_limited_cover_protocol(budget, budget, k=k),
                part, gens[3 * t + 2],
            )
            covered += covers_estar(inst, res.output)
            feasible += is_vertex_cover(inst.graph, res.output)
        print(f"  {budget:>8} {covered / trials:>14.2f} "
              f"{feasible / trials:>12.2f}")


if __name__ == "__main__":
    matching_lower_bound()
    vc_lower_bound()
