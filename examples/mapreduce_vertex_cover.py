#!/usr/bin/env python
"""MapReduce vertex cover in two rounds (the paper's MR corollary).

Scenario: a web-crawl-style bipartite graph (pages × trackers) with a few
hundred high-degree tracker hubs, sharded arbitrarily across k = √n
machines.  We want a small set of vertices covering every edge (a classic
monitoring/auditing primitive) without ever gathering the graph on one
machine or paying many synchronization rounds.

Round 1: every machine re-shuffles its edges to random machines.
Round 2: every machine peels its piece (VC-Coreset, Theorem 2) and ships
         the peeled hubs + sparse residual to one designated machine, which
         finishes with a König/2-approx cover of the composed residual.

The Lattanzi et al. filtering baseline needs ≥ 3 rounds at the same memory.

Run:  python examples/mapreduce_vertex_cover.py
"""

from repro.baselines.filtering import filtering_matching
from repro.core.mapreduce_algos import mapreduce_vertex_cover
from repro.cover import is_vertex_cover, konig_cover
from repro.graph.generators import skewed_bipartite
from repro.utils.rng import spawn_generators


def main() -> None:
    gens = spawn_generators(seed=7, n=4)
    half = 4000
    graph = skewed_bipartite(
        half, half,
        hub_count=half // 50,     # 80 tracker hubs ...
        hub_degree=half // 8,     # ... each touching 500 pages
        leaf_p=4.0 / half,        # background long-tail edges
        rng=gens[0],
    )
    print(f"workload: n={graph.n_vertices}, m={graph.n_edges}, "
          f"max degree={graph.max_degree}")

    result = mapreduce_vertex_cover(graph, rng=gens[1])
    opt = konig_cover(graph).shape[0]
    print(f"\ncoreset MapReduce (k={result.k} machines):")
    print(f"  rounds:              {result.job.n_rounds}")
    print(f"  peak machine memory: {result.job.peak_machine_edges} edges")
    print(f"  cover size:          {result.cover.shape[0]} "
          f"(optimal {opt}, ratio {result.cover.shape[0] / opt:.2f})")
    print(f"  feasible:            {is_vertex_cover(graph, result.cover)}")

    # Pre-randomized input: one round suffices.
    result1 = mapreduce_vertex_cover(graph, rng=gens[2],
                                     assume_random_input=True)
    print(f"\nwith pre-randomized input: rounds={result1.job.n_rounds}, "
          f"cover={result1.cover.shape[0]}")

    # Baseline: filtering needs multiple rounds to even produce a matching
    # (whose endpoints 2-approximate the cover).
    filt = filtering_matching(graph, memory_edges=graph.n_edges // 8,
                              rng=gens[3])
    print(f"\nfiltering baseline [46]: rounds={filt.n_rounds}, "
          f"cover={2 * filt.matching_size} (2-approx via matching)")


if __name__ == "__main__":
    main()
